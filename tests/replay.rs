//! Time-travel replay tests: seek/re-execute to an arbitrary event
//! index reproduces the world bit-identically to an uninterrupted run,
//! across the `FAULT_SEED` matrix × the execution-policy matrix;
//! `WorldDiff` is empty exactly for identical points; rolling journal
//! segments concatenate to the single-file byte stream.

use std::sync::{Arc, Mutex};

use marcel::{ExecPolicy, JournalIndex, MemSink, Tail};
use mpich::{
    diff, reexecute_world_at, run_campaign, world_state_at, CampaignConfig, LegCtx, LegSpec,
    Placement, WorldConfig,
};
use simnet::{FaultPlan, Protocol, Topology};

/// Master seed: `FAULT_SEED` env var, or a fixed default (the same
/// convention as `tests/faults.rs` so CI's seed matrix covers both).
fn fault_seed() -> u64 {
    std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF00D)
}

fn payload(src: usize, i: usize, n: usize) -> Vec<u8> {
    (0..n)
        .map(|k| {
            (src as u8)
                .wrapping_mul(31)
                .wrapping_add((i as u8).wrapping_mul(17))
                .wrapping_add(k as u8)
        })
        .collect()
}

const SIZES: [usize; 3] = [1, 512, 9 * 1024];
const TAG: i32 = 7;
const LEGS: u64 = 6;
const SNAPSHOT_EVERY: u64 = 2;

fn storm_cfg(exec: ExecPolicy) -> CampaignConfig {
    CampaignConfig {
        label: "replay-storm".to_string(),
        legs: LEGS,
        snapshot_every: SNAPSHOT_EVERY,
        master_seed: fault_seed(),
        exec,
    }
}

/// Dual-rail faulted storm leg; `perturb_from` switches the fault seed
/// from that leg on (the controlled divergence the diff test inspects).
fn storm_factory(perturb_from: Option<u64>) -> impl Fn(&LegCtx) -> LegSpec {
    move |ctx: &LegCtx| {
        let tweak = if perturb_from.is_some_and(|from| ctx.leg >= from) {
            0xB0057
        } else {
            0
        };
        let plan = FaultPlan::new(ctx.seed ^ ctx.fault_cursor ^ tweak)
            .with_loss(0.20)
            .with_ack_loss(0.10);
        let mut t = Topology::new();
        let a = t.add_node("a", 2);
        let b = t.add_node("b", 2);
        let sci = t.add_network(Protocol::Sisci, [a, b]);
        let bip = t.add_network(Protocol::Bip, [a, b]);
        let mut sci_plan = plan.clone();
        sci_plan.seed ^= 0x5C1_5C1;
        t.set_fault(sci, sci_plan);
        t.set_fault(bip, plan);
        LegSpec {
            label: format!("replay-leg{}", ctx.leg),
            topology: t,
            placement: Placement::OneRankPerNode,
            config: WorldConfig::default(),
            fault_cells: 2,
            program: Arc::new(|comm| {
                let me = comm.rank();
                let peer = 1 - me;
                let mut got = Vec::new();
                if me == 0 {
                    for (i, &n) in SIZES.iter().enumerate() {
                        comm.send(&payload(me, i, n), peer, TAG);
                    }
                }
                for &n in &SIZES {
                    got.extend_from_slice(&comm.recv(n, Some(peer), Some(TAG)).0);
                }
                if me == 1 {
                    for (i, &n) in SIZES.iter().enumerate() {
                        comm.send(&payload(me, i, n), peer, TAG);
                    }
                }
                got
            }),
        }
    }
}

fn full_journal(perturb_from: Option<u64>) -> Vec<u8> {
    let buf = Arc::new(Mutex::new(Vec::new()));
    run_campaign(
        &storm_cfg(ExecPolicy::Seed),
        MemSink::new(buf.clone()),
        storm_factory(perturb_from),
    )
    .expect("storm campaign failed");
    let bytes = buf.lock().unwrap().clone();
    bytes
}

/// The reconstruction points every matrix test probes: journal start,
/// first event, mid-leg, a leg-boundary snapshot point, and the end.
fn probe_points(idx: &JournalIndex) -> Vec<u64> {
    let total = idx.events();
    let boundary = idx.legs[(SNAPSHOT_EVERY - 1) as usize].first_event
        + idx.legs[(SNAPSHOT_EVERY - 1) as usize].events;
    vec![0, 1, total / 3, boundary, total.saturating_sub(1), total]
}

/// Tentpole: `reexecute_world_at` == `world_state_at` at every probe
/// point, under both execution policies, and the regenerated journal
/// prefix is byte-identical to the original's.
#[test]
fn reexecution_reproduces_world_bit_identically() {
    let journal = full_journal(None);
    let idx = JournalIndex::build(&journal).expect("journal indexes");
    assert_eq!(idx.scan.tail, Tail::Clean);
    for exec in [ExecPolicy::Seed, ExecPolicy::Ticketed(2)] {
        let cfg = storm_cfg(exec);
        for point in probe_points(&idx) {
            let direct = world_state_at(&idx, point)
                .unwrap_or_else(|e| panic!("direct world at {point}: {e}"));
            let (reexec, regenerated) =
                reexecute_world_at(&cfg, &journal, storm_factory(None), point)
                    .unwrap_or_else(|e| panic!("re-execution to {point} under {exec:?}: {e}"));
            assert_eq!(
                reexec, direct,
                "world at event {point} under {exec:?} diverged from the direct fold"
            );
            assert_eq!(
                reexec.replay.digest(),
                direct.replay.digest(),
                "digest mismatch at {point}"
            );
            assert_eq!(
                &journal[..regenerated.len()],
                &regenerated[..],
                "regenerated prefix at {point} under {exec:?} is not byte-identical"
            );
            assert!(diff(&direct, &reexec).is_empty());
        }
    }
}

/// Seek is a binary search: probes stay within the log2 bound, and the
/// chosen snapshot is the greatest one at or before the target.
#[test]
fn seek_is_logarithmic_and_correct() {
    let journal = full_journal(None);
    let idx = JournalIndex::build(&journal).expect("journal indexes");
    assert_eq!(idx.snapshots.len() as u64, LEGS / SNAPSHOT_EVERY);
    let bound = (idx.snapshots.len() as u64).ilog2() as usize + 1;
    for point in 0..=idx.events() {
        let seek = idx.seek(point);
        assert!(
            seek.probes <= bound,
            "{} probes for {} snapshots at point {point}",
            seek.probes,
            idx.snapshots.len()
        );
        match seek.snapshot {
            Some(s) => {
                assert!(idx.snapshots[s].events_before <= point);
                if let Some(next) = idx.snapshots.get(s + 1) {
                    assert!(next.events_before > point);
                }
            }
            None => {
                assert!(idx
                    .snapshots
                    .first()
                    .is_none_or(|s| s.events_before > point));
            }
        }
    }
}

/// `WorldDiff` is empty exactly when the points are identical: the
/// same point diffs empty; different points in one journal, and the
/// same point across a perturbed-seed journal, diff non-empty.
#[test]
fn world_diff_separates_identical_from_divergent() {
    const PERTURB_AT: u64 = 3;
    let reference = full_journal(None);
    let perturbed = full_journal(Some(PERTURB_AT));
    assert_ne!(reference, perturbed);
    let idx_r = JournalIndex::build(&reference).expect("reference indexes");
    let idx_p = JournalIndex::build(&perturbed).expect("perturbed indexes");

    for point in probe_points(&idx_r) {
        let w = world_state_at(&idx_r, point).unwrap();
        let d = diff(&w, &w);
        assert!(d.is_empty(), "self-diff at {point}: {d}");
        assert_eq!(d.deltas(), 0);
        assert!(d.to_string().contains("identical"));
    }

    let a = world_state_at(&idx_r, idx_r.events()).unwrap();
    let b = world_state_at(&idx_r, idx_r.events() / 2).unwrap();
    let d = diff(&a, &b);
    assert!(!d.is_empty(), "distinct points must diff non-empty");
    assert!(d.deltas() > 0);

    // Before the perturbation the worlds agree; at the end they don't,
    // and the divergence shows up in typed layers, not just digests.
    let pre_r = world_state_at(&idx_r, idx_r.legs[0].first_event + idx_r.legs[0].events).unwrap();
    let pre_p = world_state_at(&idx_p, idx_p.legs[0].first_event + idx_p.legs[0].events).unwrap();
    assert!(diff(&pre_r, &pre_p).is_empty(), "perturbation leaked early");
    let end_r = world_state_at(&idx_r, idx_r.events()).unwrap();
    let end_p = world_state_at(&idx_p, idx_p.events()).unwrap();
    let d = diff(&end_r, &end_p);
    assert!(!d.is_empty(), "perturbed campaign diffed empty");
    assert!(
        d.events_digest.is_some() || !d.channels.is_empty() || !d.run_end.is_empty(),
        "divergence must be attributed beyond the point index: {d}"
    );
}

/// Satellite: a campaign journaled into rolling segment files
/// concatenates byte-identically to the single-file stream, and the
/// scanner reads the segmented journal transparently.
#[test]
fn rolling_segments_concatenate_to_the_flat_journal() {
    let flat = full_journal(None);
    let dir = std::env::temp_dir().join(format!("replay-roll-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let prefix = dir.join("storm");
    let sink = marcel::FileSink::create_rolling(&prefix, 32 * 1024).expect("rolling sink");
    run_campaign(&storm_cfg(ExecPolicy::Seed), sink, storm_factory(None))
        .expect("rolled campaign failed");
    let rolled = marcel::read_segments(&prefix).expect("read segments");
    assert_eq!(rolled, flat, "segment concatenation != flat journal");
    let segments = (0..)
        .take_while(|&s| marcel::segment_path(&prefix, s).exists())
        .count();
    assert!(
        segments > 1,
        "32 KiB roll over a {}-byte journal must produce multiple segments",
        flat.len()
    );
    // `read_journal` resolves a segment prefix like a plain path.
    let via_path = marcel::read_journal(&prefix).expect("read_journal over segments");
    assert_eq!(via_path, flat);
    let idx = JournalIndex::build(&rolled).expect("segmented journal indexes");
    assert_eq!(idx.scan.tail, Tail::Clean);
    assert_eq!(idx.legs.len() as u64, LEGS);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: any event window exports through the Chrome-trace path
/// with counter samples at the boundaries it contains.
#[test]
fn window_export_carries_events_and_counters() {
    let journal = full_journal(None);
    let idx = JournalIndex::build(&journal).expect("journal indexes");
    let total = idx.events();
    let trace = idx.window_trace(total / 4, 3 * total / 4);
    assert!(!trace.is_empty(), "mid-campaign window has events");
    let counters = idx.window_counters(total / 4, 3 * total / 4);
    assert!(!counters.is_empty(), "window spans at least one leg end");
    let json = marcel::chrome_trace_json_with_counters(&trace, &idx.thread_metas(), &counters);
    assert!(json.contains("\"ph\":\"C\""), "counter events exported");
    assert!(json.contains("\"retransmits\":"), "fault counters named");
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
}
