//! Seed ↔ Ticketed equivalence: the `ExecPolicy::Ticketed(n)` engine
//! must reproduce `ExecPolicy::Seed` *bit for bit* — same trace, same
//! metrics snapshot, same end times, same user-visible results — for
//! every worker count. Only host wall-clock may differ. These tests
//! drive both engines over kernel-level synchronization workloads and
//! full MPI worlds (including fault injection) and compare everything
//! the kernel can observe.

use std::sync::Arc;

use marcel::{
    chrome_trace_json, CostModel, ExecPolicy, Kernel, MetricsSnapshot, PollSource, ProcId,
    Semaphore, SimBarrier, SimCondvar, SimMutex, TraceEvent, VirtualDuration, VirtualTime,
};
use mpich::{run_world_full, Placement, WorldConfig};
use simnet::{FaultPlan, Protocol, Topology};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Everything a kernel run exposes, for exact comparison.
#[derive(PartialEq, Debug)]
struct RunFingerprint {
    end: VirtualTime,
    trace: Vec<TraceEvent>,
    metrics: MetricsSnapshot,
}

/// Run a kernel-level scenario under the given exec policy and collect
/// its full fingerprint. The scenario spawns threads across several
/// speculation domains and pushes every synchronization primitive the
/// kernel has through cross-domain traffic.
fn kernel_scenario(exec: ExecPolicy) -> (RunFingerprint, Vec<u64>) {
    let mut cost = CostModel::calibrated();
    cost.exec = exec;
    let k = Kernel::new(cost);
    k.enable_trace();

    let n_domains = 4u32;
    let per_domain = 2u64;

    // Shared (host-created) primitives: legal from every domain.
    let pool = Semaphore::new(&k, 3);
    let mutex = SimMutex::new(&k, 0u64);
    let barrier = SimBarrier::new(&k, (n_domains as usize) * (per_domain as usize));
    let queue = marcel::Queue::new(&k);
    let cv_mutex = SimMutex::new(&k, false);
    let cv = SimCondvar::new(&k);
    let src = PollSource::<u64>::new(&k, ProcId(0), VirtualDuration::from_nanos(40));

    let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for d in 1..=n_domains {
        for i in 0..per_domain {
            let pool = pool.clone();
            let mutex = mutex.clone();
            let barrier = barrier.clone();
            let queue = queue.clone();
            let cv_mutex = cv_mutex.clone();
            let cv = cv.clone();
            let src = src.clone();
            let log = log.clone();
            let id = u64::from(d) * 10 + i;
            handles.push(k.spawn_in(format!("d{d}w{i}"), d, move || {
                marcel::advance(VirtualDuration::from_nanos(37 * id + 11));
                // Contend on the shared pool.
                for round in 0..4u64 {
                    pool.acquire();
                    marcel::advance(VirtualDuration::from_nanos(100 + id * 13 + round * 7));
                    *mutex.lock() += 1;
                    pool.release();
                }
                // Domain-local traffic: a child thread plus local sync.
                let local = Semaphore::current(0);
                let child_local = local.clone();
                let child = marcel::spawn(format!("d{d}w{i}c"), move || {
                    marcel::advance(VirtualDuration::from_nanos(50 + id));
                    child_local.release();
                    id
                });
                local.acquire();
                assert_eq!(child.join(), id);
                // Cross-domain rendezvous.
                barrier.wait();
                // Queue: domain 1 produces, domain 2 consumes; the poll
                // source gets posts from domain 3 and waits in domain 4.
                match d {
                    1 => queue.push(id),
                    2 => log.lock().push(queue.pop()),
                    3 => {
                        if i == 0 {
                            src.attach();
                        }
                        src.post(marcel::now() + VirtualDuration::from_nanos(500 + id), id);
                    }
                    _ => {
                        if let Some(p) = src.poll_wait() {
                            log.lock().push(p.payload);
                        }
                    }
                }
                // Condvar: one waiter per domain, one global waker.
                if i == 0 {
                    let mut flag = cv_mutex.lock();
                    while !*flag {
                        flag = cv.wait(&cv_mutex, flag);
                    }
                } else if d == n_domains {
                    marcel::advance(VirtualDuration::from_micros(30));
                    *cv_mutex.lock() = true;
                    cv.notify_all();
                }
                marcel::sleep(VirtualDuration::from_nanos(id * 3 + 1));
                id
            }));
        }
    }
    k.run().unwrap();
    let mut results: Vec<u64> = handles
        .into_iter()
        .filter_map(|h| h.join_outcome())
        .collect();
    results.sort_unstable();
    let mut seen = log.lock().clone();
    seen.sort_unstable();
    (
        RunFingerprint {
            end: k.end_time(),
            trace: k.take_trace(),
            metrics: k.metrics().snapshot(),
        },
        {
            let mut all = results;
            all.extend(seen);
            all
        },
    )
}

#[test]
fn kernel_scenario_ticketed_matches_seed_exactly() {
    let (seed_fp, seed_out) = kernel_scenario(ExecPolicy::Seed);
    assert!(!seed_fp.trace.is_empty(), "scenario must produce a trace");
    for n in WORKER_COUNTS {
        let (fp, out) = kernel_scenario(ExecPolicy::Ticketed(n));
        assert_eq!(seed_out, out, "results diverged at workers={n}");
        assert_eq!(seed_fp.end, fp.end, "end time diverged at workers={n}");
        assert_eq!(
            seed_fp.metrics, fp.metrics,
            "metrics snapshot diverged at workers={n}"
        );
        if seed_fp.trace != fp.trace {
            let i = seed_fp
                .trace
                .iter()
                .zip(&fp.trace)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| seed_fp.trace.len().min(fp.trace.len()));
            panic!(
                "trace diverged at workers={n}: lengths {} vs {}, first diff at {i}:\n  seed: {:?}\n  tick: {:?}",
                seed_fp.trace.len(),
                fp.trace.len(),
                seed_fp.trace.get(i),
                fp.trace.get(i),
            );
        }
    }
}

/// A full MPI world run's observable state.
struct WorldFingerprint {
    results: Vec<Vec<i64>>,
    end: VirtualTime,
    trace: Vec<TraceEvent>,
    trace_json: String,
    metrics: MetricsSnapshot,
    faults: madeleine::FaultCounters,
}

/// Panic with the first differing event (plus a little context) instead
/// of dumping two multi-megabyte traces.
fn assert_traces_equal(seed: &[TraceEvent], other: &[TraceEvent], label: &str) {
    if seed == other {
        return;
    }
    let i = seed
        .iter()
        .zip(other)
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| seed.len().min(other.len()));
    let lo = i.saturating_sub(3);
    panic!(
        "trace diverged ({label}): lengths {} vs {}, first diff at {i}\n  seed[{lo}..]: {:#?}\n  other[{lo}..]: {:#?}",
        seed.len(),
        other.len(),
        &seed[lo..(i + 3).min(seed.len())],
        &other[lo..(i + 3).min(other.len())],
    );
}

/// Four-node world with mixed point-to-point and collective traffic.
/// `faults` injects deterministic message loss on the wire.
fn world_scenario(exec: ExecPolicy, faults: Option<FaultPlan>) -> WorldFingerprint {
    let topology = match faults {
        None => Topology::single_network(4, Protocol::Tcp),
        Some(plan) => {
            let mut t = Topology::new();
            let nodes: Vec<_> = (0..4).map(|i| t.add_node(format!("node{i}"), 1)).collect();
            t.add_network_with_fault(Protocol::Tcp, plan, nodes);
            t
        }
    };
    let config = WorldConfig {
        exec,
        trace: true,
        ..WorldConfig::default()
    };
    let (results, kernel, session) =
        run_world_full(topology, Placement::OneRankPerNode, config, |comm| {
            let me = comm.rank() as i64;
            let n = comm.size();
            // Point-to-point ring with payload verification.
            let next = (comm.rank() + 1) % n;
            let prev = (comm.rank() + n - 1) % n;
            comm.send(&[me as u8; 64], next, 7);
            let (data, _) = comm.recv_bytes(64, Some(prev), Some(7));
            assert_eq!(data[0] as usize, prev);
            // Collectives over the same ranks.
            let sum = comm.allreduce_vec(&[me + 1], mpich::ReduceOp::Sum)[0];
            let gathered = comm.allgather_vec(&[me * me]);
            comm.barrier();
            let mut out = vec![me, sum];
            out.extend(gathered.into_iter().flatten());
            out
        })
        .expect("world failed");
    let metas = mpich::thread_metas(&kernel, &session);
    let trace = kernel.take_trace();
    WorldFingerprint {
        results,
        end: kernel.end_time(),
        trace_json: chrome_trace_json(&trace, &metas),
        trace,
        metrics: kernel.metrics().snapshot(),
        faults: session.fault_counters(),
    }
}

#[test]
fn world_ticketed_matches_seed_for_every_worker_count() {
    let seed = world_scenario(ExecPolicy::Seed, None);
    for n in WORKER_COUNTS {
        let t = world_scenario(ExecPolicy::Ticketed(n), None);
        assert_eq!(seed.results, t.results, "results diverged at workers={n}");
        assert_eq!(seed.end, t.end, "end time diverged at workers={n}");
        assert_eq!(
            seed.metrics, t.metrics,
            "metrics snapshot diverged at workers={n}"
        );
        assert_traces_equal(&seed.trace, &t.trace, &format!("workers={n}"));
        assert_eq!(
            seed.trace_json, t.trace_json,
            "trace JSON diverged at workers={n}"
        );
    }
}

/// Satellite: two identical `Ticketed(4)` runs must emit byte-identical
/// trace JSON — commit order, span ids and Chrome tid assignment are
/// defined by ticket order, not by host-thread racing.
#[test]
fn ticketed_replay_is_bit_identical() {
    let a = world_scenario(ExecPolicy::Ticketed(4), None);
    let b = world_scenario(ExecPolicy::Ticketed(4), None);
    assert_eq!(a.trace_json, b.trace_json, "replay trace JSON diverged");
    assert_eq!(a.metrics, b.metrics, "replay metrics diverged");
    assert_eq!(a.end, b.end, "replay end time diverged");
    assert_eq!(a.results, b.results, "replay results diverged");
}

/// Satellite: the fault-injection matrix. Deterministic loss plans
/// (same seeds as tests/faults.rs) × `{Seed, Ticketed(2), Ticketed(8)}`
/// must agree on every fault counter and every received payload.
#[test]
fn fault_matrix_is_exec_policy_invariant() {
    let mut total_drops = 0;
    for seed in [7, 1942] {
        let plan = FaultPlan::new(seed).with_loss(0.20).with_ack_loss(0.10);
        let base = world_scenario(ExecPolicy::Seed, Some(plan.clone()));
        total_drops += base.faults.drops;
        for n in [2usize, 8] {
            let t = world_scenario(ExecPolicy::Ticketed(n), Some(plan.clone()));
            assert_eq!(
                base.faults, t.faults,
                "fault counters diverged at seed={seed} workers={n}"
            );
            assert_eq!(
                base.results, t.results,
                "receive buffers diverged at seed={seed} workers={n}"
            );
            assert_eq!(
                base.end, t.end,
                "end time diverged at seed={seed} workers={n}"
            );
        }
    }
    assert!(
        total_drops > 0,
        "no plan injected faults; matrix is vacuous"
    );
}
