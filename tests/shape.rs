//! Shape assertions: the qualitative claims of the paper's evaluation
//! (§5) must hold in the reproduction — who wins, by roughly what
//! factor, and where the crossovers fall. Absolute-number comparisons
//! live in EXPERIMENTS.md; these tests pin the *shape* so regressions
//! in the models or protocol stack get caught.

use bench::experiments;

fn within(value: f64, target: f64, tol: f64) -> bool {
    (value - target).abs() <= target * tol
}

#[test]
fn table1_raw_madeleine_anchors() {
    let r = experiments::table1(2);
    for a in &r.anchors {
        assert!(
            within(a.measured, a.paper, 0.10),
            "{}: measured {} vs paper {}",
            a.what,
            a.measured,
            a.paper
        );
    }
}

#[test]
fn table2_ch_mad_anchors() {
    let r = experiments::table2(2);
    // Latency anchors within 30% (the paper's own decompositions are
    // estimates), bandwidth within 10%.
    for a in &r.anchors {
        let tol = if a.unit == "us" { 0.30 } else { 0.10 };
        assert!(
            within(a.measured, a.paper, tol),
            "{}: measured {} vs paper {}",
            a.what,
            a.measured,
            a.paper
        );
    }
}

#[test]
fn fig6_tcp_shape() {
    let r = experiments::fig6(2);
    // (a) ch_mad beats ch_p4 for small messages (<=256B)...
    for n in [1usize, 4, 64, 256] {
        assert!(
            r.us_at("ch_mad", n) < r.us_at("ch_p4", n),
            "ch_mad must win at {n}B: {} vs {}",
            r.us_at("ch_mad", n),
            r.us_at("ch_p4", n)
        );
    }
    // ...with a bounded gap beyond (the paper: "difference is limited").
    let gap_1k = r.us_at("ch_p4", 1024) - r.us_at("ch_mad", 1024);
    assert!(gap_1k.abs() < 20.0, "1KB gap {gap_1k}us");
    // (b) raw Madeleine below both MPI stacks everywhere.
    for n in [4usize, 1024, 65536] {
        assert!(r.us_at("raw_Madeleine", n) < r.us_at("ch_mad", n));
    }
    // (c) ch_p4 ceilings near 10 MB/s; ch_mad exceeds 11 MB/s past the
    // 64KB switch point and approaches raw Madeleine.
    assert!(r.mb_s_at("ch_p4", 1 << 20) < 10.2);
    assert!(r.mb_s_at("ch_mad", 1 << 20) > 11.0);
    let ratio = r.mb_s_at("ch_mad", 1 << 20) / r.mb_s_at("raw_Madeleine", 1 << 20);
    assert!(
        ratio > 0.97,
        "ch_mad delivers ~all of Madeleine's TCP bandwidth: {ratio}"
    );
    // (d) similar bandwidth below the switch point.
    let below = r.mb_s_at("ch_mad", 16 * 1024) / r.mb_s_at("ch_p4", 16 * 1024);
    assert!(
        (0.9..1.1).contains(&below),
        "below 64KB ch_mad~ch_p4: {below}"
    );
}

#[test]
fn fig7_sci_shape() {
    let r = experiments::fig7(2);
    // (a) Native SCI stacks win on small-message latency (they skip the
    // Madeleine/Marcel layers); ch_mad is the slowest of the three MPI
    // stacks at 4B.
    assert!(r.us_at("ScaMPI", 4) < r.us_at("SCI-MPICH", 4));
    assert!(r.us_at("SCI-MPICH", 4) < r.us_at("ch_mad", 4));
    // (b) the 8KB switch point is visible: bandwidth jumps sharply
    // between 8KB (eager) and 16KB (rendezvous).
    let jump = r.mb_s_at("ch_mad", 16 * 1024) / r.mb_s_at("ch_mad", 8 * 1024);
    assert!(jump > 1.4, "switch-point jump {jump}");
    // (c) past 16KB ch_mad outperforms both native stacks...
    for n in [16 * 1024usize, 64 * 1024, 1 << 20] {
        assert!(r.mb_s_at("ch_mad", n) > r.mb_s_at("ScaMPI", n), "at {n}");
        assert!(r.mb_s_at("ch_mad", n) > r.mb_s_at("SCI-MPICH", n), "at {n}");
    }
    // ...with a sustained 75+ MB/s.
    assert!(r.mb_s_at("ch_mad", 1 << 20) > 75.0);
    // (d) before the switch point ch_mad is the weakest ("still a
    // valuable alternative" — inferior or equal, not catastrophic).
    let at_4k = r.mb_s_at("ch_mad", 4096);
    assert!(at_4k < r.mb_s_at("ScaMPI", 4096));
    assert!(at_4k > r.mb_s_at("ScaMPI", 4096) / 3.0);
}

#[test]
fn fig8_myrinet_shape() {
    let r = experiments::fig8(2);
    // (a) latency order at 4B: PM < ch_mad < GM.
    assert!(r.us_at("MPI-PM", 4) < r.us_at("ch_mad", 4));
    assert!(r.us_at("ch_mad", 4) < r.us_at("MPI-GM", 4));
    // ch_mad keeps beating GM below 512B.
    for n in [16usize, 64, 256] {
        assert!(r.us_at("ch_mad", n) < r.us_at("MPI-GM", n), "at {n}");
    }
    // (b) MPI-GM definitely outperformed on bandwidth by both.
    for n in [8 * 1024usize, 64 * 1024, 1 << 20] {
        assert!(
            r.mb_s_at("ch_mad", n) > 1.3 * r.mb_s_at("MPI-GM", n),
            "at {n}"
        );
        assert!(
            r.mb_s_at("MPI-PM", n) > 1.3 * r.mb_s_at("MPI-GM", n),
            "at {n}"
        );
    }
    // (c) the BIP 1KB internal-switch notch: bandwidth at 1KB sags
    // below the log-log trend of its neighbours.
    let bw512 = r.mb_s_at("ch_mad", 512);
    let bw1k = r.mb_s_at("ch_mad", 1024);
    let bw2k = r.mb_s_at("ch_mad", 2048);
    let trend = (bw512 * bw2k).sqrt();
    assert!(
        bw1k < 0.95 * trend,
        "1KB notch missing: {bw512} {bw1k} {bw2k}"
    );
    // (d) PM wins below 4KB and above 256KB; comparable in between.
    assert!(r.mb_s_at("MPI-PM", 2048) > r.mb_s_at("ch_mad", 2048));
    assert!(r.mb_s_at("MPI-PM", 1 << 20) > r.mb_s_at("ch_mad", 1 << 20));
    let mid = r.mb_s_at("MPI-PM", 64 * 1024) / r.mb_s_at("ch_mad", 64 * 1024);
    assert!((0.8..1.25).contains(&mid), "mid-range ratio {mid}");
}

#[test]
fn fig9_multiprotocol_impact_shape() {
    let r = experiments::fig9(2);
    let alone = |n: usize| r.us_at("SCI_thread_only", n);
    let both = |n: usize| r.us_at("SCI_thread_+_TCP_thread", n);
    // (a) the TCP polling thread costs extra at every size...
    for n in [1usize, 64, 1024, 65536] {
        assert!(both(n) > alone(n), "at {n}B");
    }
    // ...roughly one TCP poll (6us) at small sizes.
    let penalty = both(4) - alone(4);
    assert!(
        (4.0..9.0).contains(&penalty),
        "small-message penalty {penalty}us"
    );
    // (b) the penalty is bounded: large-message bandwidth converges.
    let ratio =
        r.mb_s_at("SCI_thread_+_TCP_thread", 1 << 20) / r.mb_s_at("SCI_thread_only", 1 << 20);
    assert!(ratio > 0.97, "1MB bandwidth ratio {ratio}");
    // (c) and the multi-protocol configuration still crushes actually
    // *using* TCP: even the penalized SCI latency is far below TCP's.
    assert!(both(4) < 40.0);
}

#[test]
fn summary_crossover_sizes() {
    // The headline multi-protocol story in one test: on the SCI network
    // the reproduction must place the eager/rendezvous switch at 8KB
    // (elected), TCP's at 64KB, BIP's at 7KB — visible as bandwidth
    // discontinuities.
    let r7 = experiments::fig7(1);
    let pre = r7.mb_s_at("ch_mad", 8192);
    let post = r7.mb_s_at("ch_mad", 16384);
    assert!(
        post / pre > 1.4,
        "SCI discontinuity at 8KB: {pre} -> {post}"
    );

    let r6 = experiments::fig6(1);
    let pre = r6.mb_s_at("ch_mad", 65536);
    let post = r6.mb_s_at("ch_mad", 131072);
    assert!(
        post / pre > 1.05,
        "TCP discontinuity at 64KB: {pre} -> {post}"
    );
}
