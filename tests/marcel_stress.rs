//! Stress and property tests of the marcel kernel itself: scheduling
//! order, poll-source semantics and synchronization primitives under
//! randomized (seeded) workloads.

use marcel::{
    CostModel, Kernel, PollSource, ProcId, Semaphore, SimMutex, VirtualDuration, VirtualTime,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

#[test]
fn many_threads_preserve_virtual_time_order() {
    // 40 threads with staggered advances: a shared log must come out in
    // non-decreasing virtual time.
    let k = Kernel::new(CostModel::calibrated());
    let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
    for i in 0..40u64 {
        let log = log.clone();
        k.spawn(format!("t{i}"), move || {
            let mut rng = StdRng::seed_from_u64(i);
            for _ in 0..20 {
                marcel::advance(VirtualDuration::from_nanos(rng.gen_range(10..5_000)));
                log.lock().push(marcel::now());
            }
        });
    }
    k.run().unwrap();
    let log = log.lock();
    assert_eq!(log.len(), 800);
    assert!(log.windows(2).all(|w| w[0] <= w[1]), "log out of order");
}

#[test]
fn semaphore_counting_invariant_under_stress() {
    // A semaphore-guarded pool of 3 permits: at most 3 holders at once,
    // checked with a real counter.
    let k = Kernel::new(CostModel::calibrated());
    let sem = Semaphore::new(&k, 3);
    let active = Arc::new(parking_lot::Mutex::new((0i32, 0i32))); // (current, max)
    for i in 0..12u64 {
        let sem = sem.clone();
        let active = active.clone();
        k.spawn(format!("w{i}"), move || {
            let mut rng = StdRng::seed_from_u64(i * 7 + 1);
            for _ in 0..10 {
                sem.acquire();
                {
                    let mut a = active.lock();
                    a.0 += 1;
                    a.1 = a.1.max(a.0);
                }
                marcel::advance(VirtualDuration::from_nanos(rng.gen_range(100..2_000)));
                active.lock().0 -= 1;
                sem.release();
            }
        });
    }
    k.run().unwrap();
    let (current, max) = *active.lock();
    assert_eq!(current, 0);
    assert!(max <= 3, "semaphore admitted {max} concurrent holders");
    assert!(max > 1, "stress should actually contend");
}

#[test]
fn mutex_critical_sections_never_overlap_in_virtual_time() {
    let k = Kernel::new(CostModel::calibrated());
    let m = SimMutex::new(&k, ());
    let spans = Arc::new(parking_lot::Mutex::new(Vec::new()));
    for i in 0..8u64 {
        let m = m.clone();
        let spans = spans.clone();
        k.spawn(format!("t{i}"), move || {
            for _ in 0..6 {
                let g = m.lock();
                let start = marcel::now();
                marcel::advance(VirtualDuration::from_micros(3 + i));
                let end = marcel::now();
                drop(g);
                spans.lock().push((start, end));
            }
        });
    }
    k.run().unwrap();
    let mut spans = spans.lock().clone();
    spans.sort();
    for w in spans.windows(2) {
        assert!(w[0].1 <= w[1].0, "critical sections overlap: {w:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Messages posted with arbitrary (future) arrival times are always
    /// delivered in (arrival, post-order) order, regardless of the
    /// posting order.
    #[test]
    fn poll_source_orders_by_arrival(arrivals in proptest::collection::vec(0u64..1_000_000, 1..20)) {
        let k = Kernel::new(CostModel::free());
        let src = PollSource::<usize>::new(&k, ProcId(0), VirtualDuration::from_nanos(10));
        let tx = src.clone();
        let arrivals_tx = arrivals.clone();
        k.spawn("poster", move || {
            for (i, a) in arrivals_tx.iter().enumerate() {
                tx.post(VirtualTime(*a), i);
            }
        });
        let n = arrivals.len();
        let arrivals_rx = arrivals.clone();
        let h = k.spawn("poller", move || {
            let mut ok = true;
            let mut last = VirtualTime::ZERO;
            for _ in 0..n {
                let m = src.poll_wait().unwrap();
                ok &= m.arrival >= last;
                // The payload index must match the sort order.
                last = m.arrival;
                ok &= m.arrival == VirtualTime(arrivals_rx[m.payload]);
            }
            ok
        });
        k.run().unwrap();
        prop_assert!(h.join_outcome().unwrap());
    }

    /// End time is invariant to spawn *declaration* interleavings that
    /// do not change per-thread work (determinism of the dispatch rule).
    #[test]
    fn end_time_deterministic(durations in proptest::collection::vec(1u64..10_000, 1..10)) {
        let run = |ds: &[u64]| {
            let k = Kernel::new(CostModel::calibrated());
            for (i, d) in ds.iter().enumerate() {
                let d = *d;
                k.spawn(format!("t{i}"), move || {
                    marcel::advance(VirtualDuration::from_nanos(d));
                });
            }
            k.run().unwrap();
            k.end_time()
        };
        prop_assert_eq!(run(&durations), run(&durations));
    }
}
