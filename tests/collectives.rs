//! Collective operations across topologies, sizes, roots and devices,
//! checked against sequential references.

use mpich::{run_world, Placement, ReduceOp, WorldConfig};
use simnet::{Protocol, Topology};

fn world<T: Send + 'static>(
    n: usize,
    f: impl Fn(&mpich::Communicator) -> T + Send + Sync + 'static,
) -> Vec<T> {
    run_world(
        Topology::single_network(n, Protocol::Bip),
        Placement::OneRankPerNode,
        WorldConfig::default(),
        f,
    )
    .expect("world completes")
}

/// Run over the heterogeneous meta-cluster with SMP placement: ranks
/// communicate through ch_self, smp_plug AND ch_mad at once.
fn hetero_world<T: Send + 'static>(
    f: impl Fn(&mpich::Communicator) -> T + Send + Sync + 'static,
) -> Vec<T> {
    run_world(
        Topology::meta_cluster(2),
        Placement::OneRankPerCpu, // 8 ranks on 4 dual-CPU nodes
        WorldConfig::default(),
        f,
    )
    .expect("hetero world completes")
}

#[test]
fn barrier_synchronizes_clocks() {
    let results = world(5, |comm| {
        // Rank r computes r ms, then everyone meets at the barrier.
        marcel::advance(marcel::VirtualDuration::from_millis(comm.rank() as u64));
        comm.barrier();
        marcel::now()
    });
    // Nobody can leave the barrier before the slowest rank (4 ms) got in.
    for t in &results {
        assert!(
            t.as_secs_f64() >= 0.004,
            "a rank left the barrier at {t}, before the slowest arrival"
        );
    }
}

#[test]
fn bcast_from_every_root() {
    for root in 0..4 {
        let results = world(4, move |comm| {
            let data = (comm.rank() == root).then(|| vec![root as u8; 100]);
            comm.bcast_bytes(root, data)
        });
        for r in results {
            assert_eq!(r, vec![root as u8; 100]);
        }
    }
}

#[test]
fn bcast_non_power_of_two_and_large() {
    let results = world(7, |comm| {
        let payload: Option<Vec<u8>> =
            (comm.rank() == 3).then(|| (0..100_000).map(|i| (i % 251) as u8).collect());
        comm.bcast_bytes(3, payload)
    });
    assert_eq!(results.len(), 7);
    for r in &results {
        assert_eq!(r.len(), 100_000);
        assert!(r.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
    }
}

#[test]
fn reduce_sum_matches_reference() {
    let results = world(6, |comm| {
        let me = comm.rank() as i64;
        let contribution = vec![me, me * me, 1];
        comm.reduce_vec(2, &contribution, ReduceOp::Sum)
    });
    for (rank, r) in results.iter().enumerate() {
        if rank == 2 {
            // sum 0..=5 = 15; sum of squares = 55; count = 6.
            assert_eq!(r.as_deref(), Some(&[15i64, 55, 6][..]));
        } else {
            assert!(r.is_none());
        }
    }
}

#[test]
fn allreduce_all_ops() {
    let results = world(4, |comm| {
        let me = comm.rank() as i64 + 1; // 1..=4
        (
            comm.allreduce_vec(&[me], ReduceOp::Sum)[0],
            comm.allreduce_vec(&[me], ReduceOp::Prod)[0],
            comm.allreduce_vec(&[me], ReduceOp::Min)[0],
            comm.allreduce_vec(&[me], ReduceOp::Max)[0],
            comm.allreduce_vec(&[me % 2], ReduceOp::Land)[0],
            comm.allreduce_vec(&[me % 2], ReduceOp::Lor)[0],
        )
    });
    for r in results {
        assert_eq!(r, (10, 24, 1, 4, 0, 1));
    }
}

#[test]
fn allreduce_maxloc_finds_owner() {
    let results = world(5, |comm| {
        let me = comm.rank() as i64;
        // Value peaks at rank 3.
        let value = if me == 3 { 100 } else { me };
        comm.allreduce_vec(&[value, me], ReduceOp::MaxLoc)
    });
    for r in results {
        assert_eq!(r, vec![100, 3]);
    }
}

#[test]
fn gather_variable_sizes() {
    let results = world(4, |comm| {
        let me = comm.rank();
        let data = vec![me as u8; me + 1]; // rank r contributes r+1 bytes
        comm.gather_bytes(0, data)
    });
    let gathered = results[0].as_ref().expect("root has the parts");
    for (r, part) in gathered.iter().enumerate() {
        assert_eq!(part, &vec![r as u8; r + 1]);
    }
    assert!(results[1].is_none());
}

#[test]
fn scatter_distributes_parts() {
    let results = world(4, |comm| {
        let parts = (comm.rank() == 1).then(|| {
            (0..4)
                .map(|d| vec![d as u8; d * 10 + 1])
                .collect::<Vec<_>>()
        });
        comm.scatter_bytes(1, parts)
    });
    for (r, part) in results.iter().enumerate() {
        assert_eq!(part, &vec![r as u8; r * 10 + 1]);
    }
}

#[test]
fn allgather_everyone_sees_everything() {
    let results = world(5, |comm| {
        let me = comm.rank() as u64;
        comm.allgather_vec(&[me * 7])
    });
    for r in results {
        assert_eq!(r, vec![vec![0], vec![7], vec![14], vec![21], vec![28]]);
    }
}

#[test]
fn alltoall_transposes() {
    let n = 4;
    let results = world(n, move |comm| {
        let me = comm.rank();
        // parts[d] = [me, d]
        let parts: Vec<Vec<u8>> = (0..n).map(|d| vec![me as u8, d as u8]).collect();
        comm.alltoall_bytes(parts)
    });
    for (me, got) in results.iter().enumerate() {
        for (src, part) in got.iter().enumerate() {
            assert_eq!(part, &vec![src as u8, me as u8], "rank {me} from {src}");
        }
    }
}

#[test]
fn scan_prefix_sums() {
    let results = world(6, |comm| {
        let me = comm.rank() as i64 + 1;
        comm.scan_vec(&[me], ReduceOp::Sum)[0]
    });
    assert_eq!(results, vec![1, 3, 6, 10, 15, 21]);
}

#[test]
fn collectives_on_heterogeneous_smp_world() {
    // 8 ranks across ch_self/smp_plug/ch_mad simultaneously.
    let results = hetero_world(|comm| {
        let me = comm.rank() as i64;
        let sum = comm.allreduce_vec(&[me], ReduceOp::Sum)[0];
        let gathered = comm.allgather_vec(&[me * me]);
        let flat: Vec<i64> = gathered.into_iter().map(|v| v[0]).collect();
        (sum, flat)
    });
    for (sum, squares) in results {
        assert_eq!(sum, 28); // 0+..+7
        assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }
}

#[test]
fn dup_isolates_contexts() {
    let results = world(3, |comm| {
        let dup = comm.dup();
        if comm.rank() == 0 {
            // Same (src, tag) on both communicators: contexts must keep
            // them apart.
            comm.send(&[1], 1, 5);
            dup.send(&[2], 1, 5);
            0
        } else if comm.rank() == 1 {
            // Receive from the dup FIRST.
            let (from_dup, _) = dup.recv(8, Some(0), Some(5));
            let (from_orig, _) = comm.recv(8, Some(0), Some(5));
            (from_dup[0] * 10 + from_orig[0]) as usize
        } else {
            0
        }
    });
    assert_eq!(results[1], 21);
}

#[test]
fn split_builds_disjoint_communicators() {
    let results = world(6, |comm| {
        let me = comm.rank();
        let color = (me % 2) as i32; // evens / odds
        let sub = comm.split(color, me as i32).expect("defined color");
        let sub_sum = sub.allreduce_vec(&[me as i64], ReduceOp::Sum)[0];
        (sub.rank(), sub.size(), sub_sum)
    });
    // Evens {0,2,4}: sum 6; odds {1,3,5}: sum 9.
    for (me, (sub_rank, sub_size, sum)) in results.iter().enumerate() {
        assert_eq!(*sub_size, 3);
        assert_eq!(*sub_rank, me / 2);
        assert_eq!(*sum, if me % 2 == 0 { 6 } else { 9 });
    }
}

#[test]
fn split_undefined_color_returns_none() {
    let results = world(4, |comm| {
        let color = if comm.rank() == 0 { -1 } else { 0 };
        match comm.split(color, 0) {
            None => (true, 0),
            Some(sub) => (false, sub.size()),
        }
    });
    assert_eq!(results[0], (true, 0));
    for r in &results[1..] {
        assert_eq!(*r, (false, 3));
    }
}

#[test]
fn split_by_key_reorders() {
    let results = world(4, |comm| {
        let me = comm.rank();
        // Reverse order via descending keys.
        let sub = comm.split(0, -(me as i32)).unwrap();
        sub.rank()
    });
    assert_eq!(results, vec![3, 2, 1, 0]);
}

#[test]
fn nested_split_of_dup() {
    let results = hetero_world(|comm| {
        let dup = comm.dup();
        let half = dup
            .split((comm.rank() / 4) as i32, comm.rank() as i32)
            .unwrap();
        let sum = half.allreduce_vec(&[comm.rank() as i64], ReduceOp::Sum)[0];
        (half.size(), sum)
    });
    for (me, (size, sum)) in results.iter().enumerate() {
        assert_eq!(*size, 4);
        assert_eq!(*sum, if me < 4 { 6 } else { 22 });
    }
}

#[test]
fn reduce_float_deterministic_across_runs() {
    let run = || {
        world(5, |comm| {
            let me = comm.rank();
            let xs: Vec<f64> = (0..64).map(|i| ((me * 64 + i) as f64).sin()).collect();
            comm.allreduce_vec(&xs, ReduceOp::Sum)
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same tree, same order, bit-identical floats");
}

#[test]
fn collectives_over_ch_p4() {
    let results = run_world(
        Topology::single_network(4, Protocol::Tcp),
        Placement::OneRankPerNode,
        WorldConfig::ch_p4(),
        |comm| comm.allreduce_vec(&[comm.rank() as i64 + 1], ReduceOp::Prod)[0],
    )
    .unwrap();
    assert_eq!(results, vec![24; 4]);
}

#[test]
fn single_rank_world_collectives_are_trivial() {
    let results = run_world(
        Topology::single_network(2, Protocol::Tcp),
        Placement::OneRankPerNode,
        WorldConfig::default(),
        |comm| {
            // Split into singleton communicators, then run collectives
            // inside one rank.
            let solo = comm.split(comm.rank() as i32, 0).unwrap();
            assert_eq!(solo.size(), 1);
            solo.barrier();
            let b = solo.bcast_bytes(0, Some(vec![5]));
            let r = solo.allreduce_vec(&[41i64], ReduceOp::Sum);
            let g = solo.allgather_bytes(vec![7]);
            (b, r[0], g.len())
        },
    )
    .unwrap();
    for (b, r, g) in results {
        assert_eq!((b, r, g), (vec![5], 41, 1));
    }
}

#[test]
fn split_by_node_groups_smp_ranks() {
    let results = hetero_world(|comm| {
        let node_comm = comm.split_by_node();
        // 4 dual-CPU nodes -> every node communicator has 2 ranks.
        let local_sum = node_comm.allreduce_vec(&[comm.rank() as i64], ReduceOp::Sum)[0];
        (node_comm.size(), node_comm.rank(), local_sum)
    });
    for (world_rank, (size, local, sum)) in results.iter().enumerate() {
        assert_eq!(*size, 2);
        assert_eq!(*local, world_rank % 2);
        let node_base = (world_rank / 2 * 2) as i64;
        assert_eq!(*sum, node_base * 2 + 1);
    }
}

#[test]
fn hierarchical_allreduce_via_node_split() {
    // Reduce within each node over smp_plug, then across node leaders
    // over ch_mad, then broadcast back — the classic two-level pattern.
    let results = hetero_world(|comm| {
        let node_comm = comm.split_by_node();
        let node_total = node_comm.reduce_vec(0, &[comm.rank() as i64], ReduceOp::Sum);
        let leaders = comm.split(
            if node_comm.rank() == 0 { 0 } else { -1 },
            comm.rank() as i32,
        );
        let global = match (&node_total, &leaders) {
            (Some(t), Some(lc)) => Some(lc.allreduce_vec(t, ReduceOp::Sum)[0]),
            _ => None,
        };
        node_comm.bcast_vec::<i64>(0, global.map(|g| vec![g]))[0]
    });
    assert_eq!(results, vec![28; 8]); // 0+..+7
}
