//! Device dispatch and multi-protocol behaviour observed through
//! virtual time: the paper's core claim is that one `ch_mad` device
//! serves every network at near-native speed, with locality devices
//! (`ch_self`, `smp_plug`) below it.

use mpich::{run_world, ChMadConfig, Placement, PolicyMode, RemoteDeviceKind, WorldConfig};
use simnet::{NodeId, Protocol, Topology};

/// One-way time of a single 4 KB exchange between two given ranks of a
/// world (measured at the sender as half the round trip).
fn pair_oneway(
    topology: Topology,
    placement: Placement,
    a: usize,
    b: usize,
    bytes: usize,
) -> marcel::VirtualDuration {
    let results = run_world(topology, placement, WorldConfig::default(), move |comm| {
        if comm.rank() == a {
            let payload = vec![7u8; bytes];
            comm.send(&payload, b, 0);
            comm.recv(bytes, Some(b), Some(0));
            let t0 = marcel::now();
            comm.send(&payload, b, 0);
            comm.recv(bytes, Some(b), Some(0));
            Some((marcel::now() - t0) / 2)
        } else if comm.rank() == b {
            for _ in 0..2 {
                let (d, _) = comm.recv(bytes, Some(a), Some(0));
                comm.send(&d, a, 0);
            }
            None
        } else {
            None
        }
    })
    .unwrap();
    results.into_iter().flatten().next().unwrap()
}

#[test]
fn locality_hierarchy_self_smp_remote() {
    // Meta-cluster, one rank per CPU: ranks 0,1 share node 0 (SCI
    // cluster); rank 2 is on node 1 (SCI); rank 4 on node 2 (Myrinet).
    let topo = || Topology::meta_cluster(2);
    let n = 4096;
    let self_t = pair_oneway(topo(), Placement::OneRankPerCpu, 0, 0, n);
    let smp_t = pair_oneway(topo(), Placement::OneRankPerCpu, 0, 1, n);
    let sci_t = pair_oneway(topo(), Placement::OneRankPerCpu, 0, 2, n);
    let tcp_t = pair_oneway(topo(), Placement::OneRankPerCpu, 0, 4, n);
    assert!(self_t < smp_t, "loop-back {self_t} < shared memory {smp_t}");
    assert!(
        smp_t < tcp_t,
        "shared memory {smp_t} < cross-cluster TCP {tcp_t}"
    );
    assert!(sci_t < tcp_t, "SCI {sci_t} < cross-cluster TCP {tcp_t}");
}

#[test]
fn ch_mad_picks_the_fastest_shared_network() {
    // Two nodes connected by BOTH SCI and TCP: traffic must ride SCI.
    let mut both = Topology::new();
    let a = both.add_node("a", 1);
    let b = both.add_node("b", 1);
    both.add_network(Protocol::Sisci, [a, b]);
    both.add_network(Protocol::Tcp, [a, b]);

    let t_both = pair_oneway(both, Placement::OneRankPerNode, 0, 1, 16);
    let t_tcp = pair_oneway(
        Topology::single_network(2, Protocol::Tcp),
        Placement::OneRankPerNode,
        0,
        1,
        16,
    );
    // Riding SCI (even with the TCP polling thread attached) is far
    // below the TCP time.
    assert!(
        t_both.as_micros_f64() < t_tcp.as_micros_f64() / 3.0,
        "SCI+TCP pair took {t_both}, TCP-only {t_tcp}"
    );
}

#[test]
fn no_distinction_between_intra_and_inter_cluster_links() {
    // The paper's §4.1 point: the cluster-interconnect (TCP) and the
    // cluster-internal network are both just channels; a TCP pair works
    // even when both ends also have faster cluster networks.
    let t = Topology::meta_cluster(2);
    // Ranks 0 (SCI cluster) and 2 (Myrinet cluster) share only TCP.
    let cross = pair_oneway(t, Placement::OneRankPerNode, 0, 2, 1024);
    let tcp_only = pair_oneway(
        Topology::single_network(2, Protocol::Tcp),
        Placement::OneRankPerNode,
        0,
        1,
        1024,
    );
    // Same protocol path, so times are within a polling cycle of each
    // other (the meta-cluster ranks poll more channels).
    let delta = (cross.as_micros_f64() - tcp_only.as_micros_f64()).abs();
    assert!(
        delta < 10.0,
        "cross-cluster {cross} vs plain TCP {tcp_only}"
    );
}

#[test]
fn disconnected_topology_is_rejected_up_front() {
    let mut t = Topology::new();
    let a = t.add_node("a", 1);
    let b = t.add_node("b", 1);
    let c = t.add_node("c", 1);
    t.add_network(Protocol::Sisci, [a, b]);
    t.add_network(Protocol::Bip, [b, c]);
    let result = std::panic::catch_unwind(|| {
        run_world(
            t,
            Placement::OneRankPerNode,
            WorldConfig::default(),
            |_comm| (),
        )
        .unwrap()
    });
    assert!(
        result.is_err(),
        "gateway-requiring topology must be refused"
    );
}

/// One-way 7.5 KB exchange between the Myrinet pair of a hybrid
/// SCI+Myrinet+TCP configuration, under the given ch_mad config.
fn hybrid_bip_pair_oneway(cfg: ChMadConfig) -> marcel::VirtualDuration {
    let mut t = Topology::new();
    let nodes: Vec<NodeId> = (0..4).map(|i| t.add_node(format!("n{i}"), 1)).collect();
    t.add_network(Protocol::Sisci, [nodes[0], nodes[1]]);
    t.add_network(Protocol::Bip, [nodes[2], nodes[3]]);
    t.add_network(Protocol::Tcp, nodes.clone());
    let world = WorldConfig {
        remote: RemoteDeviceKind::ChMad(cfg),
        ..WorldConfig::default()
    };
    // 7.5 KB sits between BIP's own 7 KB switch point and the elected
    // 8 KB one, so the policy mode decides the transfer mode.
    let n = 7_680;
    let results = run_world(t, Placement::OneRankPerNode, world, move |comm| {
        if comm.rank() == 2 {
            let payload = vec![7u8; n];
            comm.send(&payload, 3, 0);
            comm.recv(n, Some(3), Some(0));
            let t0 = marcel::now();
            comm.send(&payload, 3, 0);
            comm.recv(n, Some(3), Some(0));
            Some((marcel::now() - t0) / 2)
        } else if comm.rank() == 3 {
            for _ in 0..2 {
                let (d, _) = comm.recv(n, Some(2), Some(0));
                comm.send(&d, 2, 0);
            }
            None
        } else {
            None
        }
    })
    .unwrap();
    results.into_iter().flatten().next().unwrap()
}

#[test]
fn switch_point_election_is_visible_in_device() {
    // In Elected compatibility mode, the Myrinet pair must use SCI's
    // 8 KB switch point (§4.2.2), NOT Myrinet's 7 KB: the 7.5 KB
    // message goes eager (one message). Forcing BIP's native value
    // makes it rendezvous (3 messages).
    let elected = hybrid_bip_pair_oneway(ChMadConfig {
        policy: PolicyMode::Elected,
        ..ChMadConfig::default()
    });
    let forced = hybrid_bip_pair_oneway(ChMadConfig {
        policy: PolicyMode::Elected,
        switch_point_override: Some(Protocol::Bip.switch_point()),
        ..ChMadConfig::default()
    });
    assert_ne!(
        elected, forced,
        "election must change the 7.5KB transfer mode"
    );
    // In this model the rendezvous handshake is cheaper than the eager
    // copy it avoids at 7.5 KB (see examples/switch_point_tuning: the
    // true crossover sits near 2.6 KB on BIP), so the elected-eager
    // path is the *slower* one — the single elected switch point is a
    // compromise, exactly the ADI limitation §4.2.2 describes.
    assert!(
        elected > forced,
        "eager {elected} vs forced-rendezvous {forced}"
    );
}

#[test]
fn per_network_default_uses_the_channels_own_threshold() {
    // The default policy resolves the threshold per channel: the
    // Myrinet pair uses BIP's native 7 KB value, so 7.5 KB goes
    // rendezvous — identical to overriding with BIP's switch point,
    // and different from the Elected compromise.
    let default = hybrid_bip_pair_oneway(ChMadConfig::default());
    let bip_native = hybrid_bip_pair_oneway(ChMadConfig {
        switch_point_override: Some(Protocol::Bip.switch_point()),
        ..ChMadConfig::default()
    });
    let elected = hybrid_bip_pair_oneway(ChMadConfig {
        policy: PolicyMode::Elected,
        ..ChMadConfig::default()
    });
    assert_eq!(
        default, bip_native,
        "per-network must match BIP's own threshold"
    );
    assert!(
        elected > default,
        "elected eager {elected} vs per-network rendezvous {default}"
    );
}

#[test]
fn more_attached_channels_slow_detection() {
    // Generalization of Fig. 9: each extra polling thread adds its poll
    // cost to every detection. Extra TCP *adapters* (Madeleine supports
    // several networks of the same protocol) keep the traffic on SCI
    // while stacking polling threads.
    let lat = |extra_tcp_networks: usize| {
        let mut t = Topology::new();
        let a = t.add_node("a", 1);
        let b = t.add_node("b", 1);
        t.add_network(Protocol::Sisci, [a, b]);
        for _ in 0..extra_tcp_networks {
            t.add_network(Protocol::Tcp, [a, b]);
        }
        pair_oneway(t, Placement::OneRankPerNode, 0, 1, 16)
    };
    let sci = lat(0);
    let one_tcp = lat(1);
    let two_tcp = lat(2);
    assert!(sci < one_tcp, "{sci} < {one_tcp}");
    assert!(one_tcp < two_tcp, "{one_tcp} < {two_tcp}");
    // One detection per one-way trip; each TCP poller costs ~6us/poll.
    let p1 = one_tcp.as_micros_f64() - sci.as_micros_f64();
    let p2 = two_tcp.as_micros_f64() - one_tcp.as_micros_f64();
    assert!((4.0..9.0).contains(&p1), "first TCP polling penalty {p1}us");
    assert!(
        (4.0..9.0).contains(&p2),
        "second TCP polling penalty {p2}us"
    );
}

#[test]
fn ch_p4_vs_ch_mad_on_identical_topology() {
    let n = 256;
    let mad = pair_oneway(
        Topology::single_network(2, Protocol::Tcp),
        Placement::OneRankPerNode,
        0,
        1,
        n,
    );
    let results = run_world(
        Topology::single_network(2, Protocol::Tcp),
        Placement::OneRankPerNode,
        WorldConfig::ch_p4(),
        move |comm| {
            if comm.rank() == 0 {
                let payload = vec![1u8; n];
                comm.send(&payload, 1, 0);
                comm.recv(n, Some(1), Some(0));
                let t0 = marcel::now();
                comm.send(&payload, 1, 0);
                comm.recv(n, Some(1), Some(0));
                Some((marcel::now() - t0) / 2)
            } else {
                for _ in 0..2 {
                    let (d, _) = comm.recv(n, Some(0), Some(0));
                    comm.send(&d, 0, 0);
                }
                None
            }
        },
    )
    .unwrap();
    let p4 = results.into_iter().flatten().next().unwrap();
    // Fig 6a: ch_mad wins at/below 256 B.
    assert!(mad < p4, "ch_mad {mad} must beat ch_p4 {p4} at {n}B");
}

#[test]
fn smp_ranks_and_remote_ranks_mix_in_one_recv() {
    // A rank posts ANY_SOURCE receives served by smp_plug AND ch_mad.
    let results = run_world(
        Topology::meta_cluster(2),
        Placement::OneRankPerCpu,
        WorldConfig::default(),
        |comm| {
            if comm.rank() == 0 {
                let mut sources = Vec::new();
                for _ in 0..2 {
                    let (_, status) = comm.recv(64, None, Some(9));
                    sources.push(status.source);
                }
                sources.sort_unstable();
                sources
            } else if comm.rank() == 1 || comm.rank() == 7 {
                // Rank 1 shares node 0 with rank 0 (smp_plug); rank 7
                // is in the Myrinet cluster (ch_mad over TCP).
                comm.send(&[comm.rank() as u8; 16], 0, 9);
                Vec::new()
            } else {
                Vec::new()
            }
        },
    )
    .unwrap();
    assert_eq!(results[0], vec![1, 7]);
}
