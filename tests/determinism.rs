//! Determinism of the whole stack: the virtual-time kernel commits
//! events in (time, thread) order, so identical programs must yield
//! bit-identical results, virtual end times, and traces — including
//! under randomized (but seeded) traffic.

use mpich::{run_world_kernel, Placement, ReduceOp, WorldConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{Protocol, Topology};

fn stress_run(seed: u64) -> (Vec<u64>, marcel::VirtualTime) {
    let (results, kernel) = run_world_kernel(
        Topology::meta_cluster(2),
        Placement::OneRankPerCpu, // 8 ranks
        WorldConfig::default(),
        move |comm| {
            let me = comm.rank();
            let n = comm.size();
            let mut rng = StdRng::seed_from_u64(seed ^ (me as u64) << 32);
            let mut checksum = 0u64;
            // Every rank sends `rounds` messages to pseudo-random peers
            // and receives exactly the messages addressed to it. The
            // schedule is agreed upon by regenerating every rank's RNG.
            let rounds = 12usize;
            let mut plans: Vec<Vec<(usize, usize)>> = Vec::new(); // per rank: (dst, len)
            for r in 0..n {
                let mut rr = StdRng::seed_from_u64(seed ^ (r as u64) << 32);
                plans.push(
                    (0..rounds)
                        .map(|_| {
                            let dst = rr.gen_range(0..n);
                            let len = rr.gen_range(0..20_000);
                            (dst, len)
                        })
                        .collect(),
                );
            }
            // Post receives for everything addressed to me.
            let mut recvs = Vec::new();
            for (src, plan) in plans.iter().enumerate() {
                for (round, (dst, len)) in plan.iter().enumerate() {
                    if *dst == me {
                        recvs.push(comm.irecv(*len, Some(src), Some(round as i32)));
                    }
                }
            }
            // Fire my sends (isend so rounds overlap).
            let mut sends = Vec::new();
            for (round, (dst, len)) in plans[me].iter().enumerate() {
                let payload: Vec<u8> = (0..*len).map(|_| rng.gen()).collect();
                sends.push(comm.isend(payload, *dst, round as i32));
            }
            for (_, status) in mpich::wait_all(recvs) {
                checksum = checksum
                    .wrapping_mul(31)
                    .wrapping_add(status.len as u64)
                    .wrapping_add(status.tag as u64);
            }
            for s in sends {
                s.wait_send();
            }
            // Fold in a collective so the checksum covers everyone.
            comm.allreduce_vec(&[checksum], ReduceOp::Sum)[0]
        },
    )
    .expect("stress world completes");
    (results, kernel.end_time())
}

#[test]
fn randomized_traffic_is_deterministic() {
    let (r1, t1) = stress_run(0xfeed);
    let (r2, t2) = stress_run(0xfeed);
    assert_eq!(r1, r2, "results must be identical across runs");
    assert_eq!(t1, t2, "virtual end time must be identical across runs");
    // All ranks agreed on the global checksum via the allreduce.
    assert!(r1.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn different_seeds_change_the_schedule() {
    let (r1, _) = stress_run(1);
    let (r2, _) = stress_run(2);
    assert_ne!(r1[0], r2[0], "different traffic should change the checksum");
}

#[test]
fn kernel_trace_is_reproducible_for_a_world() {
    let run = || {
        let (_, kernel) = run_world_kernel(
            Topology::single_network(3, Protocol::Sisci),
            Placement::OneRankPerNode,
            WorldConfig::default(),
            |comm| {
                let x = comm.rank() as i64;
                comm.allreduce_vec(&[x], ReduceOp::Max)
            },
        )
        .unwrap();
        kernel.end_time()
    };
    assert_eq!(run(), run());
}

#[test]
fn pingpong_time_is_independent_of_unrelated_history() {
    // A steady-state property: the k-th and (k+5)-th ping-pong of the
    // same size cost the same (no hidden drift in the simulation).
    let results = run_world_kernel(
        Topology::single_network(2, Protocol::Bip),
        Placement::OneRankPerNode,
        WorldConfig::default(),
        |comm| {
            if comm.rank() == 0 {
                let mut times = Vec::new();
                for _ in 0..8 {
                    let t0 = marcel::now();
                    comm.send(&[0u8; 64], 1, 0);
                    comm.recv(64, Some(1), Some(0));
                    times.push((marcel::now() - t0).as_nanos());
                }
                times
            } else {
                for _ in 0..8 {
                    let (d, _) = comm.recv(64, Some(0), Some(0));
                    comm.send(&d, 0, 0);
                }
                Vec::new()
            }
        },
    )
    .unwrap()
    .0;
    let times = &results[0];
    // Skip the first (cold floors); the rest must be identical.
    assert!(
        times[1..].windows(2).all(|w| w[0] == w[1]),
        "steady-state ping-pongs drifted: {times:?}"
    );
}

#[test]
fn world_trace_capture() {
    let cfg = WorldConfig {
        trace: true,
        ..WorldConfig::default()
    };
    let (_, kernel) = run_world_kernel(
        Topology::single_network(2, Protocol::Bip),
        Placement::OneRankPerNode,
        cfg,
        |comm| {
            if comm.rank() == 0 {
                comm.send(&[1], 1, 0);
            } else {
                comm.recv(8, Some(0), Some(0));
            }
        },
    )
    .unwrap();
    let trace = kernel.take_trace();
    assert!(!trace.is_empty(), "trace must record events");
    // Spawns of both rank mains and their pollers are recorded.
    let spawns = trace.iter().filter(|e| e.what == "spawn").count();
    assert!(
        spawns >= 4,
        "expected rank mains + pollers, got {spawns} spawns"
    );
    // Events are recorded in a deterministic order: re-run matches.
    let rerun = {
        let cfg = WorldConfig {
            trace: true,
            ..WorldConfig::default()
        };
        let (_, kernel) = run_world_kernel(
            Topology::single_network(2, Protocol::Bip),
            Placement::OneRankPerNode,
            cfg,
            |comm| {
                if comm.rank() == 0 {
                    comm.send(&[1], 1, 0);
                } else {
                    comm.recv(8, Some(0), Some(0));
                }
            },
        )
        .unwrap();
        kernel.take_trace()
    };
    assert_eq!(trace, rerun);
}
