//! Property-based tests (proptest) over the core data structures and
//! protocol invariants.

use bytes::Bytes;
use madeleine::{ReceiveMode, SendMode, Session};
use marcel::{CostModel, Kernel};
use mpich::{BaseType, Datatype, ReduceOp};
use proptest::prelude::*;
use simnet::Protocol;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Datatype layout engine
// ---------------------------------------------------------------------

/// A random (bounded) datatype tree.
fn arb_datatype() -> impl Strategy<Value = Arc<Datatype>> {
    let base = prop_oneof![
        Just(Datatype::base(BaseType::Byte)),
        Just(Datatype::base(BaseType::Int32)),
        Just(Datatype::base(BaseType::Float64)),
    ];
    base.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (1usize..4, inner.clone()).prop_map(|(count, t)| Datatype::contiguous(count, t)),
            (1usize..3, 1usize..3, 0isize..4, inner.clone()).prop_map(
                |(count, blocklen, gap, t)| {
                    // stride >= blocklen keeps displacements non-negative.
                    Datatype::vector(count, blocklen, blocklen as isize + gap, t)
                }
            ),
            (1usize..3, 0isize..3, inner.clone()).prop_map(|(count, gap, t)| {
                let stride = (t.extent() as isize + gap * 2).max(1);
                Datatype::hvector(count, 1, stride, t)
            }),
            (
                proptest::collection::vec((1usize..3, 0isize..5), 1..3),
                inner
            )
                .prop_map(|(mut blocks, t)| {
                    // Make displacements non-overlapping and ascending.
                    let mut cursor = 0isize;
                    for (len, displ) in blocks.iter_mut() {
                        *displ += cursor;
                        cursor = *displ + *len as isize;
                    }
                    Datatype::indexed(blocks, t)
                }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn datatype_pack_unpack_roundtrip(dt in arb_datatype(), count in 1usize..4) {
        let extent = dt.extent();
        let total = extent * count;
        let src: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        let packed = dt.pack(&src, count);
        prop_assert_eq!(packed.len(), dt.size() * count);
        let mut dst = vec![0xAAu8; total];
        let used = dt.unpack(&mut dst, &packed, count);
        prop_assert_eq!(used, packed.len());
        // Re-packing the unpacked buffer must reproduce the packed form.
        prop_assert_eq!(dt.pack(&dst, count), packed);
    }

    #[test]
    fn datatype_size_never_exceeds_extent(dt in arb_datatype()) {
        prop_assert!(dt.size() <= dt.extent().max(1), "size {} extent {}", dt.size(), dt.extent());
    }

    #[test]
    fn datatype_walk_is_disjoint_and_in_bounds(dt in arb_datatype()) {
        let extent = dt.extent();
        let mut covered = vec![false; extent];
        let mut ok = true;
        dt.walk(0, &mut |off, len| {
            #[allow(clippy::needless_range_loop)]
            for i in off..off + len {
                if i >= extent || covered[i] {
                    ok = false;
                } else {
                    covered[i] = true;
                }
            }
        });
        prop_assert!(ok, "overlapping or out-of-bounds byte runs");
        prop_assert_eq!(covered.iter().filter(|c| **c).count(), dt.size());
    }

    #[test]
    fn scalar_bytes_roundtrip(xs in proptest::collection::vec(any::<f64>(), 0..64)) {
        let bytes = mpich::to_bytes(&xs);
        let back: Vec<f64> = mpich::from_bytes(&bytes);
        prop_assert_eq!(xs.len(), back.len());
        for (a, b) in xs.iter().zip(&back) {
            prop_assert!(a == b || (a.is_nan() && b.is_nan()));
        }
    }
}

// ---------------------------------------------------------------------
// Reduction operators
// ---------------------------------------------------------------------

fn fold_ints(op: ReduceOp, chunks: &[Vec<i64>]) -> Vec<i64> {
    let mut acc = mpich::to_bytes(&chunks[0]);
    for c in &chunks[1..] {
        mpich::op::apply(BaseType::Int64, op, &mut acc, &mpich::to_bytes(c));
    }
    mpich::from_bytes(&acc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn integer_ops_are_commutative(
        a in proptest::collection::vec(any::<i64>(), 4),
        b in proptest::collection::vec(any::<i64>(), 4),
    ) {
        for op in [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max,
                   ReduceOp::Band, ReduceOp::Bor, ReduceOp::Land, ReduceOp::Lor] {
            let ab = fold_ints(op, &[a.clone(), b.clone()]);
            let ba = fold_ints(op, &[b.clone(), a.clone()]);
            prop_assert_eq!(ab, ba, "op {:?} not commutative", op);
        }
    }

    #[test]
    fn integer_ops_are_associative(
        a in proptest::collection::vec(any::<i64>(), 3),
        b in proptest::collection::vec(any::<i64>(), 3),
        c in proptest::collection::vec(any::<i64>(), 3),
    ) {
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max, ReduceOp::Band, ReduceOp::Bor] {
            let left = fold_ints(op, &[fold_ints(op, &[a.clone(), b.clone()]), c.clone()]);
            let right = fold_ints(op, &[a.clone(), fold_ints(op, &[b.clone(), c.clone()])]);
            prop_assert_eq!(left, right, "op {:?} not associative", op);
        }
    }

    #[test]
    fn minloc_picks_global_argmin(vals in proptest::collection::vec(-1000i64..1000, 2..8)) {
        let pairs: Vec<Vec<i64>> = vals.iter().enumerate()
            .map(|(i, v)| vec![*v, i as i64])
            .collect();
        let folded = fold_ints(ReduceOp::MinLoc, &pairs);
        let min = *vals.iter().min().unwrap();
        let argmin = vals.iter().position(|v| *v == min).unwrap() as i64;
        prop_assert_eq!(folded, vec![min, argmin]);
    }
}

// ---------------------------------------------------------------------
// Madeleine channel invariants
// ---------------------------------------------------------------------

// Arbitrary per-sender message schedules; the receiver must observe
// each sender's messages in order, whatever the interleaving.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn channel_fifo_per_connection(
        lens_a in proptest::collection::vec(0usize..50_000, 1..8),
        lens_b in proptest::collection::vec(0usize..50_000, 1..8),
    ) {
        let kernel = Kernel::new(CostModel::calibrated());
        let session = Session::single_network(&kernel, 3, Protocol::Bip);
        let channel = session.channels()[0].clone();
        let spawn_sender = |rank: usize, lens: Vec<usize>| {
            let ep = channel.endpoint(rank).expect("member rank");
            kernel.spawn(format!("sender{rank}"), move || {
                for (i, len) in lens.iter().enumerate() {
                    let mut payload = vec![rank as u8; len + 2];
                    payload[0] = i as u8;
                    payload[1] = rank as u8;
                    let mut conn = ep.begin_packing(2).expect("member rank");
                    conn.pack_bytes(Bytes::from(payload), SendMode::Cheaper, ReceiveMode::Cheaper);
                    conn.end_packing().expect("fault-free send");
                }
            });
        };
        spawn_sender(0, lens_a.clone());
        spawn_sender(1, lens_b.clone());
        let total = lens_a.len() + lens_b.len();
        let rx = channel.endpoint(2).expect("member rank");
        let h = kernel.spawn("receiver", move || {
            let mut next = [0u8; 2];
            for _ in 0..total {
                let mut conn = rx.begin_unpacking().expect("open");
                let data = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper);
                conn.end_unpacking();
                let (seq, sender) = (data[0], data[1] as usize);
                // Per-sender sequence numbers must arrive in order.
                if seq != next[sender] {
                    return false;
                }
                next[sender] += 1;
            }
            true
        });
        kernel.run().expect("fifo world");
        prop_assert!(h.join_outcome().unwrap(), "per-connection FIFO violated");
    }

    #[test]
    fn mixed_mode_blocks_roundtrip(
        blocks in proptest::collection::vec((0usize..4_000, any::<bool>(), any::<bool>()), 1..6),
    ) {
        // Random sequences of (len, express?, safer?) blocks survive a
        // pack/unpack cycle bit-exactly.
        let kernel = Kernel::new(CostModel::calibrated());
        let session = Session::single_network(&kernel, 2, Protocol::Tcp);
        let channel = session.channels()[0].clone();
        let tx = channel.endpoint(0).expect("member rank");
        let rx = channel.endpoint(1).expect("member rank");
        let blocks_tx = blocks.clone();
        kernel.spawn("sender", move || {
            let mut conn = tx.begin_packing(1).expect("member rank");
            for (i, (len, express, safer)) in blocks_tx.iter().enumerate() {
                let payload: Vec<u8> = (0..*len).map(|j| ((i * 37 + j) % 256) as u8).collect();
                let send = if *safer { SendMode::Safer } else { SendMode::Cheaper };
                let recv = if *express { ReceiveMode::Express } else { ReceiveMode::Cheaper };
                conn.pack(&payload, send, recv);
            }
            conn.end_packing().expect("fault-free send");
        });
        let blocks_rx = blocks.clone();
        let h = kernel.spawn("receiver", move || {
            let mut conn = rx.begin_unpacking().expect("open");
            let mut ok = true;
            for (i, (len, express, safer)) in blocks_rx.iter().enumerate() {
                let send = if *safer { SendMode::Safer } else { SendMode::Cheaper };
                let recv = if *express { ReceiveMode::Express } else { ReceiveMode::Cheaper };
                let data = conn.unpack_bytes(send, recv);
                ok &= data.len() == *len;
                ok &= data.iter().enumerate().all(|(j, &b)| b == ((i * 37 + j) % 256) as u8);
            }
            conn.end_unpacking();
            ok
        });
        kernel.run().expect("mixed-mode world");
        prop_assert!(h.join_outcome().unwrap());
    }
}

// ---------------------------------------------------------------------
// MPI-level property: protocol threshold invariance
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The transfer mode (eager vs rendezvous, any switch point) must
    // never change delivered bytes.
    #[test]
    fn delivered_bytes_independent_of_switch_point(
        len in 0usize..40_000,
        switch in 1usize..32_768,
    ) {
        use mpich::{run_world, ChMadConfig, Placement, RemoteDeviceKind, WorldConfig};
        use simnet::Topology;
        let cfg = WorldConfig {
            remote: RemoteDeviceKind::ChMad(ChMadConfig {
                switch_point_override: Some(switch),
                ..ChMadConfig::default()
            }),
            ..WorldConfig::default()
        };
        let results = run_world(
            Topology::single_network(2, Protocol::Sisci),
            Placement::OneRankPerNode,
            cfg,
            move |comm| {
                if comm.rank() == 0 {
                    let payload: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
                    comm.send(&payload, 1, 0);
                    true
                } else {
                    let (data, status) = comm.recv(len, Some(0), Some(0));
                    status.len == len
                        && data.len() == len
                        && data.iter().enumerate().all(|(i, &b)| b == (i % 253) as u8)
                }
            },
        ).expect("world completes");
        prop_assert!(results[1]);
    }

    // Neither the protocol policy (elected / per-network / striped) nor
    // the rail count may change delivered bytes or per-connection
    // ordering: run the same tagged message sequence over a dual-rail
    // SCI+BIP pair under every policy mode.
    #[test]
    fn delivery_independent_of_protocol_policy(
        lens in proptest::collection::vec(0usize..40_000, 1..5),
        mode in prop_oneof![
            Just(mpich::PolicyMode::Elected),
            Just(mpich::PolicyMode::PerNetwork),
            Just(mpich::PolicyMode::Striped),
        ],
    ) {
        use mpich::{run_world, ChMadConfig, Placement, RemoteDeviceKind, WorldConfig};
        use simnet::Topology;
        let cfg = WorldConfig {
            remote: RemoteDeviceKind::ChMad(ChMadConfig {
                policy: mode,
                ..ChMadConfig::default()
            }),
            ..WorldConfig::default()
        };
        let mut topology = Topology::new();
        let a = topology.add_node("a", 2);
        let b = topology.add_node("b", 2);
        topology.add_network(Protocol::Sisci, [a, b]);
        topology.add_network(Protocol::Bip, [a, b]);
        let lens_in = lens.clone();
        let results = run_world(
            topology,
            Placement::OneRankPerNode,
            cfg,
            move |comm| {
                if comm.rank() == 0 {
                    for (seq, &len) in lens_in.iter().enumerate() {
                        let payload: Vec<u8> =
                            (0..len).map(|i| ((i + seq) % 251) as u8).collect();
                        comm.send(&payload, 1, seq as i32);
                    }
                    true
                } else {
                    // Messages must arrive in send order with their
                    // bytes intact, whatever policy carried them.
                    lens_in.iter().enumerate().all(|(seq, &len)| {
                        let (data, status) = comm.recv(len, Some(0), None);
                        status.tag == seq as i32
                            && data.len() == len
                            && data
                                .iter()
                                .enumerate()
                                .all(|(i, &v)| v == ((i + seq) % 251) as u8)
                    })
                }
            },
        ).expect("world completes");
        prop_assert!(results[1], "policy {:?} corrupted delivery", mode);
    }
}
