//! Observability-layer tests: the typed trace and the metrics registry
//! must be as deterministic as the simulation they watch, spans must
//! balance by Finalize, reliability counters must agree with the fault
//! injector, and — the contract everything else rests on — leaving
//! tracing off must not perturb the simulation at all.

use marcel::{validate_spans, MetricsSnapshot, TraceEvent, VirtualTime};
use mpich::{run_world_full, Placement, WorldConfig};
use simnet::{FaultPlan, Protocol, Topology};

/// Sizes straddling the SCI eager→rendezvous switch so both transfer
/// modes (paper Fig. 4a/4b) leave spans in the trace.
const SIZES: [usize; 3] = [4, 4 * 1024, 40 * 1024];

/// One traced ch_mad ping-pong world; returns everything an observer
/// can extract from it.
fn traced_run(trace: bool) -> (Vec<u64>, VirtualTime, Vec<TraceEvent>, MetricsSnapshot) {
    let cfg = WorldConfig {
        trace,
        ..WorldConfig::default()
    };
    let (results, kernel, _session) = run_world_full(
        Topology::single_network(2, Protocol::Sisci),
        Placement::OneRankPerNode,
        cfg,
        |comm| {
            let mut acc = 0u64;
            for &n in &SIZES {
                if comm.rank() == 0 {
                    comm.send(&vec![7u8; n], 1, 0);
                    acc += comm.recv(n, Some(1), Some(0)).0.len() as u64;
                } else {
                    let (d, _) = comm.recv(n, Some(0), Some(0));
                    acc += d.len() as u64;
                    comm.send(&d, 0, 0);
                }
            }
            acc
        },
    )
    .expect("traced world completes");
    let snapshot = kernel.metrics().snapshot();
    (results, kernel.end_time(), kernel.take_trace(), snapshot)
}

/// The typed trace and the metrics snapshot are part of the
/// deterministic output of a run: identical programs reproduce them
/// event for event and counter for counter, including the rendered
/// forms an operator would diff.
#[test]
fn typed_trace_and_metrics_are_deterministic() {
    let (r1, t1, trace1, m1) = traced_run(true);
    let (r2, t2, trace2, m2) = traced_run(true);
    assert_eq!(r1, r2);
    assert_eq!(t1, t2);
    assert_eq!(trace1, trace2, "typed traces must match event for event");
    assert_eq!(m1, m2, "metrics snapshots must match");
    let render = |tr: &[TraceEvent]| {
        tr.iter()
            .map(|e| format!("{} {} {}\n", e.time, e.tid, e.what))
            .collect::<String>()
    };
    assert_eq!(render(&trace1), render(&trace2));
    assert_eq!(m1.to_string(), m2.to_string());
}

/// Every span opened anywhere in the stack (pack, unpack, setup,
/// handle, post, stripe) is closed by the time the world finalizes,
/// on the thread that opened it — [`validate_spans`] walks the whole
/// trace and checks begin/end pairing per thread.
#[test]
fn spans_balance_at_finalize() {
    let (_, _, trace, _) = traced_run(true);
    validate_spans(&trace).expect("all spans balanced at Finalize");
    // The run actually exercised spans from every layer we instrument.
    let span_layers: std::collections::BTreeSet<&str> = trace
        .iter()
        .filter(|e| matches!(e.what, marcel::Event::SpanBegin { .. }))
        .map(|e| e.what.layer().name())
        .collect();
    for layer in ["madeleine", "ch_mad", "adi"] {
        assert!(
            span_layers.contains(layer),
            "expected spans from {layer}, got {span_layers:?}"
        );
    }
}

/// Under a loss-only survivable plan every dropped packet is recovered
/// by exactly one retransmission: the session's fault counters agree
/// with each other and with the per-channel counters in the metrics
/// registry.
#[test]
fn retransmits_match_injected_losses() {
    let mut t = Topology::new();
    let a = t.add_node("a", 1);
    let b = t.add_node("b", 1);
    t.add_network_with_fault(Protocol::Bip, FaultPlan::new(0xF00D).with_loss(0.3), [a, b]);
    let (_, kernel, session) = run_world_full(
        t,
        Placement::OneRankPerNode,
        WorldConfig::default(),
        |comm| {
            for i in 0..8 {
                if comm.rank() == 0 {
                    comm.send(&vec![i as u8; 256], 1, i);
                } else {
                    comm.recv(256, Some(0), Some(i));
                }
            }
        },
    )
    .expect("lossy world completes");
    let c = session.fault_counters();
    assert!(c.drops > 0, "the plan injected no losses: {c:?}");
    assert_eq!(
        c.retransmits, c.drops,
        "each injected loss costs exactly one retransmission: {c:?}"
    );
    // The metrics registry tells the same story, channel by channel.
    let snap = kernel.metrics().snapshot();
    let metric_retransmits: u64 = snap
        .counters_with_prefix("chan/")
        .filter(|(k, _)| k.ends_with("/retransmits"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(metric_retransmits, c.retransmits);
    for (name, pc) in session.per_channel_counters() {
        assert_eq!(
            snap.counter(&format!("chan/{name}/retransmits")),
            pc.retransmits,
            "registry and channel disagree for {name}"
        );
    }
}

/// The zero-cost contract: instrumentation never advances virtual time,
/// so a run with tracing disabled produces bit-identical results and
/// end time to the same run traced — and records no events at all.
#[test]
fn tracing_disabled_is_zero_cost() {
    let (r_off, t_off, trace_off, m_off) = traced_run(false);
    let (r_on, t_on, trace_on, m_on) = traced_run(true);
    assert_eq!(r_off, r_on, "tracing changed the computed results");
    assert_eq!(t_off, t_on, "tracing changed the virtual end time");
    assert!(trace_off.is_empty(), "no events when tracing is off");
    assert!(!trace_on.is_empty(), "events expected when tracing is on");
    // Metrics are host-side and always on: both runs count the same.
    assert_eq!(m_off, m_on, "metrics must not depend on tracing");
}

/// The Chrome exporter emits one complete-or-instant event per trace
/// entry plus one metadata record per thread, each carrying the fields
/// `chrome://tracing` requires (CI re-validates with a real JSON
/// parser).
#[test]
fn chrome_trace_export_is_well_formed() {
    let cfg = WorldConfig {
        trace: true,
        ..WorldConfig::default()
    };
    let (_, kernel, session) = run_world_full(
        Topology::single_network(2, Protocol::Sisci),
        Placement::OneRankPerNode,
        cfg,
        |comm| {
            if comm.rank() == 0 {
                comm.send(&[1, 2, 3, 4], 1, 0);
            } else {
                comm.recv(4, Some(0), Some(0));
            }
        },
    )
    .expect("chrome world completes");
    let trace = kernel.take_trace();
    let metas = mpich::thread_metas(&kernel, &session);
    let json = marcel::chrome_trace_json(&trace, &metas);
    // The "JSON array format" Perfetto and chrome://tracing load.
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    for key in ["\"ph\"", "\"pid\"", "\"tid\"", "\"ts\""] {
        assert!(json.contains(key), "exporter output missing {key}");
    }
    // One metadata record per simulated thread, naming it.
    assert!(json.matches("thread_name").count() >= metas.len());
}
