//! Durable-journal tests: snapshot determinism, crash-resume
//! byte-identity, torn-tail recovery, and divergence bisect — for
//! campaigns driven through the fault-injection seed matrix (the same
//! `FAULT_SEED` scheme as `tests/faults.rs`).

use std::sync::{Arc, Mutex};

use marcel::{ExecPolicy, JournalError, MemSink, Record, Tail};
use mpich::journal::{bisect, scan, BisectOutcome};
use mpich::{
    resume_campaign, run_campaign, run_world, CampaignConfig, CampaignError, ConfigError, LegCtx,
    LegSpec, Placement, RemoteDeviceKind, WorldConfig,
};
use simnet::{FaultPlan, Protocol, Topology};

/// Master seed: `FAULT_SEED` env var, or a fixed default (the same
/// convention as `tests/faults.rs` so CI's seed matrix covers both).
fn fault_seed() -> u64 {
    std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF00D)
}

/// Deterministic payload of message `i` from rank `src`.
fn payload(src: usize, i: usize, n: usize) -> Vec<u8> {
    (0..n)
        .map(|k| {
            (src as u8)
                .wrapping_mul(31)
                .wrapping_add((i as u8).wrapping_mul(17))
                .wrapping_add(k as u8)
        })
        .collect()
}

/// Sizes straddling both rails' eager→rendezvous switch points.
const SIZES: [usize; 3] = [1, 512, 9 * 1024];
const TAG: i32 = 7;
const LEGS: u64 = 6;
const SNAPSHOT_EVERY: u64 = 2;

fn storm_cfg(exec: ExecPolicy) -> CampaignConfig {
    CampaignConfig {
        label: "storm".to_string(),
        legs: LEGS,
        snapshot_every: SNAPSHOT_EVERY,
        master_seed: fault_seed(),
        exec,
    }
}

/// Leg factory for a message-storm campaign over a faulted dual-rail
/// link. `perturb_from`: legs at or past this index run with a
/// perturbed fault-plan seed (different drop pattern, same traffic) —
/// the controlled divergence the bisect test hunts down. Labels are
/// identical either way, so the first divergent journal record is a
/// trace *event*, not a label.
fn storm_factory(perturb_from: Option<u64>) -> impl Fn(&LegCtx) -> LegSpec {
    move |ctx: &LegCtx| {
        let tweak = if perturb_from.is_some_and(|from| ctx.leg >= from) {
            0xB0057
        } else {
            0
        };
        let plan = FaultPlan::new(ctx.seed ^ ctx.fault_cursor ^ tweak)
            .with_loss(0.20)
            .with_ack_loss(0.10);
        let mut t = Topology::new();
        let a = t.add_node("a", 2);
        let b = t.add_node("b", 2);
        let sci = t.add_network(Protocol::Sisci, [a, b]);
        let bip = t.add_network(Protocol::Bip, [a, b]);
        let mut sci_plan = plan.clone();
        sci_plan.seed ^= 0x5C1_5C1;
        t.set_fault(sci, sci_plan);
        t.set_fault(bip, plan);
        LegSpec {
            label: format!("storm-leg{}", ctx.leg),
            topology: t,
            placement: Placement::OneRankPerNode,
            config: WorldConfig::default(),
            fault_cells: 2, // one cell per rail
            program: Arc::new(|comm| {
                let me = comm.rank();
                let peer = 1 - me;
                let mut got = Vec::new();
                if me == 0 {
                    for (i, &n) in SIZES.iter().enumerate() {
                        comm.send(&payload(me, i, n), peer, TAG);
                    }
                }
                for &n in &SIZES {
                    got.extend_from_slice(&comm.recv(n, Some(peer), Some(TAG)).0);
                }
                if me == 1 {
                    for (i, &n) in SIZES.iter().enumerate() {
                        comm.send(&payload(me, i, n), peer, TAG);
                    }
                }
                got
            }),
        }
    }
}

/// Run the storm campaign fresh under `exec` and return the journal
/// bytes plus the report digest.
fn full_journal(exec: ExecPolicy) -> (Vec<u8>, u64) {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let report = run_campaign(
        &storm_cfg(exec),
        MemSink::new(buf.clone()),
        storm_factory(None),
    )
    .expect("fresh campaign failed");
    let bytes = buf.lock().unwrap().clone();
    assert_eq!(report.bytes as usize, bytes.len());
    (bytes, report.digest)
}

/// The journal deliberately excludes the execution policy: `Seed` and
/// `Ticketed(n)` campaigns must write byte-identical journals.
#[test]
fn journal_bytes_are_identical_across_exec_policies() {
    let (seed_bytes, seed_digest) = full_journal(ExecPolicy::Seed);
    let (tick_bytes, tick_digest) = full_journal(ExecPolicy::Ticketed(2));
    assert_eq!(seed_digest, tick_digest);
    assert_eq!(seed_bytes, tick_bytes, "Seed vs Ticketed(2) journal bytes");
    let scanned = scan(&seed_bytes).expect("journal scans clean");
    assert_eq!(scanned.tail, Tail::Clean);
    assert_eq!(
        scanned.snapshot_indices().len() as u64,
        LEGS / SNAPSHOT_EVERY,
        "one snapshot every {SNAPSHOT_EVERY} legs"
    );
    // The snapshot carries real per-layer payloads, not empty husks.
    for &i in &scanned.snapshot_indices() {
        let Record::Snapshot(s) = &scanned.records[i].record else {
            panic!("snapshot_indices pointed at a non-snapshot");
        };
        assert!(!s.threads.is_empty(), "kernel thread state captured");
        let names: Vec<&str> = s.sections.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["madeleine", "matching"]);
        assert!(s.sections.iter().all(|(_, b)| !b.is_empty()));
    }
}

/// Satellite: resume-from-every-snapshot byte-equality across the
/// execution-policy matrix. A campaign truncated at any snapshot
/// boundary — or mid-record, torn — resumes to a journal byte-equal to
/// the uninterrupted run's, under Seed and Ticketed alike.
#[test]
fn resume_from_every_snapshot_is_byte_identical() {
    let (full, full_digest) = full_journal(ExecPolicy::Seed);
    let scanned = scan(&full).expect("journal scans clean");
    let snapshot_ends: Vec<usize> = scanned
        .snapshot_indices()
        .iter()
        .map(|&i| scanned.records[i].end)
        .collect();
    assert_eq!(snapshot_ends.len() as u64, LEGS / SNAPSHOT_EVERY);

    // Crash points: exactly at each snapshot boundary, torn a few bytes
    // past one (mid-record), and torn mid-campaign at an arbitrary cut.
    let mut cuts: Vec<usize> = snapshot_ends.clone();
    cuts.push(snapshot_ends[0] + 7);
    cuts.push(full.len() * 2 / 3);
    cuts.push(full.len() - 3);

    for exec in [
        ExecPolicy::Seed,
        ExecPolicy::Ticketed(2),
        ExecPolicy::Ticketed(8),
    ] {
        for &cut in &cuts {
            let salvaged = &full[..cut];
            let buf = Arc::new(Mutex::new(Vec::new()));
            let report = resume_campaign(
                &storm_cfg(exec),
                salvaged,
                MemSink::new(buf.clone()),
                storm_factory(None),
            )
            .unwrap_or_else(|e| panic!("resume at cut {cut} under {exec:?} failed: {e}"));
            let resumed = buf.lock().unwrap().clone();
            assert_eq!(
                resumed, full,
                "resume at cut {cut} under {exec:?} diverged from the uninterrupted run"
            );
            assert_eq!(report.digest, full_digest);
            assert!(
                report.legs_run <= LEGS - report.resumed_at_leg,
                "no more than the remaining legs re-executed"
            );
        }
    }
}

/// A genuine crash: the sink's byte budget runs out mid-append, cutting
/// a record in half. The scanner flags the torn tail, resume drops it
/// and re-executes from the last snapshot, and the final journal is
/// byte-equal to the uninterrupted run's.
#[test]
fn sink_crash_leaves_torn_tail_that_resume_repairs() {
    let (full, _) = full_journal(ExecPolicy::Seed);
    let budget = (full.len() * 2 / 3 + 5) as u64; // mid-record, mid-campaign
    let buf = Arc::new(Mutex::new(Vec::new()));
    let err = run_campaign(
        &storm_cfg(ExecPolicy::Seed),
        MemSink::with_budget(buf.clone(), budget),
        storm_factory(None),
    )
    .expect_err("budgeted sink must crash the campaign");
    assert!(
        matches!(err, CampaignError::Journal(JournalError::Io(_))),
        "crash surfaces as a journal I/O error, got: {err}"
    );
    let salvaged = buf.lock().unwrap().clone();
    assert_eq!(salvaged.len() as u64, budget, "sink wrote its whole budget");
    let scanned = scan(&salvaged).expect("salvaged prefix scans");
    assert!(
        matches!(scanned.tail, Tail::Torn { .. }),
        "mid-record crash leaves a torn tail"
    );
    assert!(scanned.valid_len < salvaged.len());

    let buf2 = Arc::new(Mutex::new(Vec::new()));
    resume_campaign(
        &storm_cfg(ExecPolicy::Ticketed(2)),
        &salvaged,
        MemSink::new(buf2.clone()),
        storm_factory(None),
    )
    .expect("resume from the crash artifact failed");
    assert_eq!(
        *buf2.lock().unwrap(),
        full,
        "crash-resume journal != uninterrupted journal"
    );
}

/// Two campaigns that should be identical but differ in one leg's fault
/// plan: bisect lands on the first divergent record, identifies the
/// leg, and does so with O(log snapshots) snapshot probes.
#[test]
fn bisect_pinpoints_first_divergent_leg_and_event() {
    const BUMP_AT: u64 = 3;
    let (a, _) = full_journal(ExecPolicy::Seed);
    let buf = Arc::new(Mutex::new(Vec::new()));
    run_campaign(
        &storm_cfg(ExecPolicy::Seed),
        MemSink::new(buf.clone()),
        storm_factory(Some(BUMP_AT)),
    )
    .expect("perturbed campaign failed");
    let b = buf.lock().unwrap().clone();
    assert_ne!(a, b, "the seed perturbation must change the journal");

    let scanned_a = scan(&a).expect("journal A scans");
    let outcome = bisect(&a, &b).expect("bisect scans both journals");
    let BisectOutcome::Diverged(d) = outcome else {
        panic!("bisect called differing journals identical");
    };
    assert_eq!(d.leg, BUMP_AT, "first divergence is in the bumped leg");
    assert!(
        matches!(
            scanned_a.records[d.record_index].record,
            Record::Event { .. }
        ),
        "labels are identical, so the first divergent record is a trace event: {:?}",
        scanned_a.records[d.record_index].record
    );
    let snapshots = scanned_a.snapshot_indices().len();
    assert!(
        d.snapshot_probes <= snapshots.ilog2() as usize + 1,
        "{} probes for {} snapshots is not a binary search",
        d.snapshot_probes,
        snapshots
    );

    // Sanity: a journal bisected against itself is identical.
    assert!(matches!(bisect(&a, &a).unwrap(), BisectOutcome::Identical));
}

/// Resuming with the wrong campaign identity must be refused, not
/// silently grafted onto a foreign journal.
#[test]
fn resume_rejects_foreign_journal() {
    let (full, _) = full_journal(ExecPolicy::Seed);
    let mut cfg = storm_cfg(ExecPolicy::Seed);
    cfg.master_seed ^= 1;
    let err = resume_campaign(
        &cfg,
        &full,
        MemSink::new(Arc::new(Mutex::new(Vec::new()))),
        storm_factory(None),
    )
    .expect_err("foreign journal accepted");
    assert!(matches!(err, CampaignError::Mismatch(_)), "got: {err}");
}

/// Satellite: config-time panics replaced by typed errors — the world
/// builders reject nonsense before any thread spawns.
#[test]
fn invalid_world_configs_are_typed_errors_not_panics() {
    let mk_topology = || Topology::single_network(2, Protocol::Tcp);

    let err = run_world(
        mk_topology(),
        Placement::OneRankPerNode,
        WorldConfig {
            exec: ExecPolicy::Ticketed(0),
            ..WorldConfig::default()
        },
        |comm| comm.rank(),
    )
    .expect_err("Ticketed(0) accepted");
    assert!(matches!(
        err,
        marcel::SimError::InvalidConfig(ConfigError::ZeroTicketedWorkers)
    ));

    let cfg = WorldConfig {
        forwarding: true,
        remote: RemoteDeviceKind::ChP4(Default::default()),
        ..WorldConfig::default()
    };
    assert_eq!(
        cfg.validate(),
        Err(ConfigError::ForwardingRequiresChMad),
        "forwarding over ch_p4"
    );

    let mut cfg = WorldConfig::default();
    cfg.adi.recv_touch_per_byte_ns = -0.5;
    assert_eq!(
        cfg.validate(),
        Err(ConfigError::NegativeCost("recv_touch_per_byte_ns"))
    );
    cfg.adi.recv_touch_per_byte_ns = f64::NAN;
    assert!(cfg.validate().is_err(), "NaN cost accepted");

    let mut camp = storm_cfg(ExecPolicy::Seed);
    camp.legs = 0;
    assert_eq!(camp.validate(), Err(ConfigError::ZeroCampaignParam("legs")));
    let mut camp = storm_cfg(ExecPolicy::Seed);
    camp.snapshot_every = 0;
    assert_eq!(
        camp.validate(),
        Err(ConfigError::ZeroCampaignParam("snapshot_every"))
    );
    assert_eq!(
        storm_cfg(ExecPolicy::Ticketed(0)).validate(),
        Err(ConfigError::ZeroTicketedWorkers)
    );
}
