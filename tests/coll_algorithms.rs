//! Algorithm-engine equivalence suite: every entry of the collective
//! algorithm catalog (hierarchical, recursive-doubling, Rabenseifner,
//! ring, scatter-gather) must produce byte-identical results to the
//! seed binomial implementation across communicator sizes, roots,
//! payload sizes and topologies.
//!
//! Reductions use operator/type combinations whose exact value is
//! independent of fold order (wrapping integer arithmetic, min/max,
//! bitwise, loc pairs) — the algorithms fold contributions in canonical
//! rank order but associate them differently, which only floating-point
//! addition can observe. Float reproducibility is covered separately:
//! each algorithm is deterministic run to run (same tree, same bits).
#![recursion_limit = "256"]

use mpich::{run_world, CollAlgorithm, CollError, CollPolicy, Placement, ReduceOp, WorldConfig};
use proptest::prelude::*;
use simnet::{Protocol, Topology};

/// Every policy whose results must agree with `Seed` byte for byte.
/// `Fixed` entries force each catalog algorithm even at sizes Adaptive
/// would not pick it, so small proptest payloads still cover the
/// large-message kernels.
const CHALLENGERS: [CollPolicy; 7] = [
    CollPolicy::Adaptive,
    CollPolicy::Fixed(CollAlgorithm::Binomial),
    CollPolicy::Fixed(CollAlgorithm::Hierarchical),
    CollPolicy::Fixed(CollAlgorithm::RecursiveDoubling),
    CollPolicy::Fixed(CollAlgorithm::Rabenseifner),
    CollPolicy::Fixed(CollAlgorithm::Ring),
    CollPolicy::Fixed(CollAlgorithm::ScatterGather),
];

fn cfg(policy: CollPolicy) -> WorldConfig {
    WorldConfig {
        coll: policy,
        ..WorldConfig::default()
    }
}

/// A flat fast network: every rank in one cluster, hierarchy never pays.
fn flat(n: usize) -> Topology {
    Topology::single_network(n, Protocol::Bip)
}

/// Two fast islands (SCI and BIP) joined only by slow TCP — the
/// meta-cluster shape at any rank count. Islands of a single node get
/// no fast network and become singleton clusters, so odd sizes also
/// exercise the leader logic with a one-member cluster.
fn split(n: usize) -> Topology {
    let mut t = Topology::new();
    let nodes: Vec<_> = (0..n).map(|i| t.add_node(format!("n{i}"), 1)).collect();
    let half = n.div_ceil(2);
    if half >= 2 {
        t.add_network(Protocol::Sisci, nodes[..half].iter().copied());
    }
    if n - half >= 2 {
        t.add_network(Protocol::Bip, nodes[half..].iter().copied());
    }
    t.add_network(Protocol::Tcp, nodes.iter().copied());
    t
}

fn topologies(n: usize) -> [(&'static str, Topology); 2] {
    [("flat", flat(n)), ("split", split(n))]
}

/// Deterministic per-(seed, rank, element) test value.
fn pattern(seed: u64, rank: usize, i: usize) -> i64 {
    (seed
        ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (i as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)) as i64
}

const EXACT_OPS: [ReduceOp; 6] = [
    ReduceOp::Sum,
    ReduceOp::Prod,
    ReduceOp::Min,
    ReduceOp::Max,
    ReduceOp::Band,
    ReduceOp::Bor,
];

fn arb_exact_op() -> proptest::BoxedStrategy<ReduceOp> {
    (0usize..EXACT_OPS.len()).prop_map(|i| EXACT_OPS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn allreduce_matches_seed_on_every_algorithm(
        n in 2usize..8,
        elems in 1usize..24,
        seed in any::<u64>(),
        op in arb_exact_op(),
    ) {
        let run = |topo: Topology, policy| {
            run_world(topo, Placement::OneRankPerNode, cfg(policy), move |comm| {
                let vals: Vec<i64> =
                    (0..elems).map(|i| pattern(seed, comm.rank(), i)).collect();
                comm.allreduce(&vals, op)
            })
            .expect("world completes")
        };
        for (tname, topo) in topologies(n) {
            let reference = run(topo.clone(), CollPolicy::Seed);
            for policy in CHALLENGERS {
                let got = run(topo.clone(), policy);
                prop_assert_eq!(
                    &got, &reference,
                    "allreduce {:?} diverged from Seed on {} (n={}, op={:?})",
                    policy, tname, n, op
                );
            }
        }
    }

    #[test]
    fn bcast_matches_seed_on_every_algorithm(
        n in 2usize..8,
        root_pick in 0usize..64,
        len_pick in 0usize..360,
        seed in any::<u64>(),
    ) {
        let root = root_pick % n;
        // Mostly small payloads; the tail of the range maps to one
        // large enough to cross the Adaptive scatter-gather threshold.
        let len = if len_pick >= 300 { 200_000 } else { len_pick };
        let run = |topo: Topology, policy| {
            run_world(topo, Placement::OneRankPerNode, cfg(policy), move |comm| {
                let data = (comm.rank() == root)
                    .then(|| (0..len).map(|i| pattern(seed, root, i) as u8).collect());
                comm.bcast::<u8>(root, data).expect("valid root")
            })
            .expect("world completes")
        };
        for (tname, topo) in topologies(n) {
            let reference = run(topo.clone(), CollPolicy::Seed);
            for r in &reference {
                prop_assert_eq!(r.len(), len);
            }
            for policy in CHALLENGERS {
                let got = run(topo.clone(), policy);
                prop_assert_eq!(
                    &got, &reference,
                    "bcast {:?} diverged from Seed on {} (n={}, root={}, len={})",
                    policy, tname, n, root, len
                );
            }
        }
    }

    #[test]
    fn allgather_matches_seed_on_every_algorithm(
        n in 2usize..8,
        seed in any::<u64>(),
        base_len in 0usize..40,
    ) {
        // Variable contribution sizes (allgatherv semantics): rank r
        // contributes base_len + 3r bytes.
        let run = |topo: Topology, policy| {
            run_world(topo, Placement::OneRankPerNode, cfg(policy), move |comm| {
                let me = comm.rank();
                let data: Vec<u8> = (0..base_len + 3 * me)
                    .map(|i| pattern(seed, me, i) as u8)
                    .collect();
                comm.allgather(&data)
            })
            .expect("world completes")
        };
        for (tname, topo) in topologies(n) {
            let reference = run(topo.clone(), CollPolicy::Seed);
            for policy in CHALLENGERS {
                let got = run(topo.clone(), policy);
                prop_assert_eq!(
                    &got, &reference,
                    "allgather {:?} diverged from Seed on {} (n={})",
                    policy, tname, n
                );
            }
        }
    }

    #[test]
    fn reduce_matches_seed_on_every_algorithm(
        n in 2usize..8,
        root_pick in 0usize..64,
        elems in 1usize..16,
        seed in any::<u64>(),
        op in arb_exact_op(),
    ) {
        let root = root_pick % n;
        let run = |topo: Topology, policy| {
            run_world(topo, Placement::OneRankPerNode, cfg(policy), move |comm| {
                let vals: Vec<i64> =
                    (0..elems).map(|i| pattern(seed, comm.rank(), i)).collect();
                comm.reduce(root, &vals, op).expect("valid root")
            })
            .expect("world completes")
        };
        for (tname, topo) in topologies(n) {
            let reference = run(topo.clone(), CollPolicy::Seed);
            for (rank, r) in reference.iter().enumerate() {
                prop_assert_eq!(r.is_some(), rank == root);
            }
            for policy in CHALLENGERS {
                let got = run(topo.clone(), policy);
                prop_assert_eq!(
                    &got, &reference,
                    "reduce {:?} diverged from Seed on {} (n={}, root={}, op={:?})",
                    policy, tname, n, root, op
                );
            }
        }
    }

    #[test]
    fn binomial_only_ops_are_policy_invariant(
        n in 2usize..7,
        seed in any::<u64>(),
    ) {
        // scatter / gather / alltoall / scan / exscan / reduce_scatter
        // have no catalog variants: every policy must reproduce the
        // seed's results exactly (they dispatch to the same kernels).
        let run = |topo: Topology, policy| {
            run_world(topo, Placement::OneRankPerNode, cfg(policy), move |comm| {
                let me = comm.rank();
                let nn = comm.size();
                let mine: Vec<i64> = (0..4).map(|i| pattern(seed, me, i)).collect();
                let scan = comm.scan(&mine, ReduceOp::Sum);
                let exscan = comm.exscan(&mine, ReduceOp::Max);
                let parts: Vec<Vec<i64>> =
                    (0..nn).map(|d| vec![pattern(seed, me, d)]).collect();
                let a2a = comm.alltoall(parts).expect("one part per rank");
                let gathered = comm.gather(0, &mine).expect("valid root");
                let scattered = comm
                    .scatter(
                        0,
                        (me == 0).then(|| {
                            (0..nn).map(|d| vec![pattern(seed, 99, d)]).collect()
                        }),
                    )
                    .expect("valid root and shape");
                let rs = comm
                    .reduce_scatter(
                        &(0..2 * nn).map(|i| pattern(seed, me, i)).collect::<Vec<_>>(),
                        2,
                        ReduceOp::Sum,
                    )
                    .expect("length divides");
                (scan, exscan, a2a, gathered, scattered, rs)
            })
            .expect("world completes")
        };
        for (tname, topo) in topologies(n) {
            let reference = run(topo.clone(), CollPolicy::Seed);
            for policy in [
                CollPolicy::Adaptive,
                CollPolicy::Fixed(CollAlgorithm::Hierarchical),
                CollPolicy::Fixed(CollAlgorithm::Ring),
            ] {
                let got = run(topo.clone(), policy);
                prop_assert_eq!(
                    &got, &reference,
                    "{:?} diverged from Seed on {} (n={})",
                    policy, tname, n
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Large payloads: the sizes Adaptive actually re-routes.
// ---------------------------------------------------------------------

/// At ≥ 256 KB Adaptive picks Rabenseifner (flat allreduce), ring
/// (allgather), scatter-gather (flat bcast) and the hierarchical
/// variants on the meta-cluster — all must agree with Seed bitwise.
#[test]
fn large_payload_adaptive_matches_seed() {
    for topo in [flat(6), Topology::meta_cluster(3)] {
        let run = |policy| {
            run_world(
                topo.clone(),
                Placement::OneRankPerNode,
                cfg(policy),
                |comm| {
                    let me = comm.rank();
                    let vals: Vec<i64> = (0..32 * 1024).map(|i| pattern(7, me, i)).collect();
                    let ar = comm.allreduce(&vals, ReduceOp::Sum);
                    let bytes: Vec<u8> = (0..256 * 1024).map(|i| pattern(9, me, i) as u8).collect();
                    let ag = comm.allgather(&bytes[..64 * 1024]);
                    let bc = comm
                        .bcast::<u8>(2, (me == 2).then(|| bytes.clone()))
                        .expect("valid root");
                    (ar, ag, bc)
                },
            )
            .expect("world completes")
        };
        let seed = run(CollPolicy::Seed);
        let adaptive = run(CollPolicy::Adaptive);
        assert_eq!(seed, adaptive, "large-payload Adaptive diverged from Seed");
    }
}

/// MinLoc/MaxLoc consume (value, location) pairs whose unit is two base
/// elements — the block-splitting algorithms must never split a pair.
#[test]
fn loc_ops_match_across_algorithms() {
    let run = |policy| {
        run_world(split(6), Placement::OneRankPerNode, cfg(policy), |comm| {
            let me = comm.rank() as i64;
            // 8 (value, location) pairs; ties on value resolve to the
            // lowest location on every algorithm.
            let pairs: Vec<i64> = (0..8).flat_map(|i| [((me * 7 + i) % 5), me]).collect();
            (
                comm.allreduce(&pairs, ReduceOp::MinLoc),
                comm.allreduce(&pairs, ReduceOp::MaxLoc),
            )
        })
        .expect("world completes")
    };
    let reference = run(CollPolicy::Seed);
    for policy in CHALLENGERS {
        assert_eq!(run(policy), reference, "{policy:?} diverged on loc ops");
    }
}

/// Floating-point allreduce is not required to match Seed bitwise
/// (association differs), but every algorithm must be deterministic:
/// identical runs give identical bits, and all ranks agree.
#[test]
fn float_allreduce_is_deterministic_per_algorithm() {
    for policy in CHALLENGERS {
        let run = || {
            run_world(split(6), Placement::OneRankPerNode, cfg(policy), |comm| {
                let me = comm.rank();
                let xs: Vec<f64> = (0..4096).map(|i| ((me * 4096 + i) as f64).sin()).collect();
                comm.allreduce(&xs, ReduceOp::Sum)
            })
            .expect("world completes")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "{policy:?} float allreduce not run-to-run stable");
        for r in &a[1..] {
            assert_eq!(r, &a[0], "{policy:?} ranks disagree on the float sum");
        }
    }
}

// ---------------------------------------------------------------------
// The engine really runs what it selected (metrics registry evidence).
// ---------------------------------------------------------------------

#[test]
fn adaptive_runs_hierarchical_on_the_meta_cluster() {
    let (_, kernel) = mpich::run_world_kernel(
        Topology::meta_cluster(3),
        Placement::OneRankPerNode,
        cfg(CollPolicy::Adaptive),
        |comm| comm.allreduce(&[comm.rank() as i64], ReduceOp::Sum),
    )
    .expect("world completes");
    let snap = kernel.metrics().snapshot();
    assert_eq!(
        snap.counter("coll.allreduce.hierarchical"),
        6,
        "all six ranks must dispatch the hierarchical allreduce"
    );
    assert_eq!(snap.counter("coll.allreduce.binomial"), 0);
}

#[test]
fn fixed_policy_forces_the_requested_algorithm() {
    let (_, kernel) = mpich::run_world_kernel(
        flat(4),
        Placement::OneRankPerNode,
        cfg(CollPolicy::Fixed(CollAlgorithm::Rabenseifner)),
        |comm| {
            let vals: Vec<i64> = (0..8).map(|i| pattern(3, comm.rank(), i)).collect();
            comm.allreduce(&vals, ReduceOp::Sum)
        },
    )
    .expect("world completes");
    let snap = kernel.metrics().snapshot();
    assert_eq!(snap.counter("coll.allreduce.rabenseifner"), 4);
}

#[test]
fn seed_policy_never_leaves_binomial() {
    let (_, kernel) = mpich::run_world_kernel(
        Topology::meta_cluster(2),
        Placement::OneRankPerCpu,
        WorldConfig::default(),
        |comm| {
            comm.allreduce(&[comm.rank() as i64], ReduceOp::Sum);
            comm.allgather(&[comm.rank() as u64]);
        },
    )
    .expect("world completes");
    let snap = kernel.metrics().snapshot();
    for (name, _) in snap.counters_with_prefix("coll.") {
        assert!(
            name.ends_with(".binomial"),
            "Seed policy dispatched a non-binomial algorithm: {name}"
        );
    }
}

// ---------------------------------------------------------------------
// Typed API error paths (the non-panicking surface).
// ---------------------------------------------------------------------

#[test]
fn typed_api_reports_errors_instead_of_panicking() {
    let results = run_world(
        flat(2),
        Placement::OneRankPerNode,
        WorldConfig::default(),
        |comm| {
            // Root out of range: every rank errs before communicating.
            let bad_root = comm.bcast::<u8>(9, Some(vec![1]));
            // The remaining cases run on a singleton communicator so a
            // local error cannot strand a peer mid-collective.
            let solo = comm.split(comm.rank() as i32, 0).expect("defined color");
            let missing = solo.bcast::<u8>(0, None);
            let wrong_count = solo.scatter::<u8>(0, Some(vec![vec![1], vec![2]]));
            let bad_parts = solo.alltoall::<u8>(vec![]);
            let bad_len = solo.reduce_scatter::<i64>(&[1, 2, 3], 2, ReduceOp::Sum);
            (bad_root, missing, wrong_count, bad_parts, bad_len)
        },
    )
    .expect("world completes");
    for (bad_root, missing, wrong_count, bad_parts, bad_len) in results {
        assert_eq!(
            bad_root,
            Err(CollError::RootOutOfRange {
                op: "bcast",
                root: 9,
                size: 2
            })
        );
        assert_eq!(
            missing,
            Err(CollError::MissingRootData {
                op: "bcast",
                what: "data"
            })
        );
        assert_eq!(
            wrong_count,
            Err(CollError::WrongPartCount {
                op: "scatter",
                got: 2,
                want: 1
            })
        );
        assert_eq!(
            bad_parts,
            Err(CollError::WrongPartCount {
                op: "alltoall",
                got: 0,
                want: 1
            })
        );
        assert_eq!(
            bad_len,
            Err(CollError::LengthMismatch {
                op: "reduce_scatter",
                len: 24,
                want: 16
            })
        );
    }
}

/// The typed surface and the legacy byte wrappers agree (the wrappers
/// are thin shims over the same dispatch).
#[test]
fn typed_and_legacy_surfaces_agree() {
    let results = run_world(
        split(5),
        Placement::OneRankPerNode,
        cfg(CollPolicy::Adaptive),
        |comm| {
            let me = comm.rank() as i64;
            let typed = comm.allreduce(&[me, me * me], ReduceOp::Sum);
            let legacy = comm.allreduce_vec(&[me, me * me], ReduceOp::Sum);
            let typed_b = comm
                .bcast::<i64>(1, (comm.rank() == 1).then(|| vec![42, 43]))
                .expect("valid root");
            let legacy_b = comm.bcast_vec::<i64>(1, (comm.rank() == 1).then(|| vec![42, 43]));
            (typed, legacy, typed_b, legacy_b)
        },
    )
    .expect("world completes");
    for (typed, legacy, typed_b, legacy_b) in results {
        assert_eq!(typed, legacy);
        assert_eq!(typed, vec![10, 30]);
        assert_eq!(typed_b, legacy_b);
        assert_eq!(typed_b, vec![42, 43]);
    }
}
