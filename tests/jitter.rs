//! Robustness under deterministic link jitter (failure injection):
//! every MPI semantic must survive arbitrary arrival-time perturbation,
//! and the simulation must stay reproducible.

use mpich::{run_world, run_world_kernel, Placement, ReduceOp, WorldConfig};
use simnet::{Protocol, Topology};

/// 2-node SCI topology whose link stretches arrivals by up to
/// `amplitude_ns` (pseudo-random, seeded).
fn jittery(n: usize, amplitude_ns: u64, seed: u64) -> Topology {
    let mut t = Topology::new();
    let nodes: Vec<_> = (0..n).map(|i| t.add_node(format!("n{i}"), 1)).collect();
    t.add_network_with_model(
        Protocol::Sisci,
        Protocol::Sisci.model().with_jitter(amplitude_ns, seed),
        nodes,
    );
    t
}

#[test]
fn pair_fifo_survives_heavy_jitter() {
    // Jitter far larger than message spacing: without the FIFO floor,
    // later messages would overtake earlier ones.
    let results = run_world(
        jittery(2, 200_000, 7),
        Placement::OneRankPerNode,
        WorldConfig::default(),
        |comm| {
            if comm.rank() == 0 {
                for i in 0..30u8 {
                    comm.send(&[i], 1, 0);
                }
                Vec::new()
            } else {
                (0..30)
                    .map(|_| comm.recv(8, Some(0), Some(0)).0[0])
                    .collect()
            }
        },
    )
    .unwrap();
    assert_eq!(results[1], (0..30u8).collect::<Vec<_>>());
}

#[test]
fn collectives_survive_jitter() {
    for seed in [1u64, 2, 3] {
        let results = run_world(
            jittery(5, 50_000, seed),
            Placement::OneRankPerNode,
            WorldConfig::default(),
            |comm| {
                let me = comm.rank() as i64;
                let sum = comm.allreduce_vec(&[me], ReduceOp::Sum)[0];
                let all = comm.allgather_vec(&[me * me]);
                let scan = comm.scan_vec(&[1i64], ReduceOp::Sum)[0];
                (sum, all.len(), scan)
            },
        )
        .unwrap();
        for (r, (sum, n, scan)) in results.iter().enumerate() {
            assert_eq!(*sum, 10);
            assert_eq!(*n, 5);
            assert_eq!(*scan, r as i64 + 1);
        }
    }
}

#[test]
fn rendezvous_handshake_survives_jitter() {
    let n = 300_000;
    let results = run_world(
        jittery(2, 100_000, 11),
        Placement::OneRankPerNode,
        WorldConfig::default(),
        move |comm| {
            if comm.rank() == 0 {
                let payload: Vec<u8> = (0..n).map(|i| (i % 239) as u8).collect();
                comm.send(&payload, 1, 0);
                true
            } else {
                let (data, _) = comm.recv(n, Some(0), Some(0));
                data.iter().enumerate().all(|(i, &b)| b == (i % 239) as u8)
            }
        },
    )
    .unwrap();
    assert!(results[1]);
}

#[test]
fn jittered_runs_are_still_deterministic() {
    let run = || {
        let (results, kernel) = run_world_kernel(
            jittery(4, 80_000, 99),
            Placement::OneRankPerNode,
            WorldConfig::default(),
            |comm| {
                let mut acc = 0i64;
                for round in 0..5 {
                    let v = comm.allreduce_vec(&[comm.rank() as i64 + round], ReduceOp::Max)[0];
                    acc = acc * 31 + v;
                }
                acc
            },
        )
        .unwrap();
        (results, kernel.end_time())
    };
    assert_eq!(run(), run());
}

#[test]
fn jitter_actually_changes_timing() {
    let time = |amplitude: u64| {
        let (_, kernel) = run_world_kernel(
            jittery(2, amplitude, 5),
            Placement::OneRankPerNode,
            WorldConfig::default(),
            |comm| {
                if comm.rank() == 0 {
                    comm.send(&[1; 64], 1, 0);
                    comm.recv(64, Some(1), Some(0));
                } else {
                    let (d, _) = comm.recv(64, Some(0), Some(0));
                    comm.send(&d, 0, 0);
                }
            },
        )
        .unwrap();
        kernel.end_time()
    };
    assert!(time(100_000) > time(0), "jitter must be observable");
}
