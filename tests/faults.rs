//! Fault-injection tests: the robustness extension end to end.
//!
//! The paper assumes perfectly reliable networks; these tests exercise
//! the reproduction's reliability sublayer (madeleine retransmit/dedup)
//! and ch_mad's dynamic rail failover under deterministic, seeded
//! fault plans. The master seed comes from the `FAULT_SEED` environment
//! variable (CI runs the suite under several seeds); unset, a fixed
//! default keeps local runs reproducible.

use bytes::Bytes;
use madeleine::SessionBuilder;
use marcel::{CostModel, Kernel, VirtualDuration, VirtualTime};
use mpich::{
    run_world, run_world_full, AdiCosts, ChMad, ChMadConfig, Device, Engine, Envelope, Placement,
    PolicyMode, RemoteDeviceKind, WorldConfig,
};
use proptest::prelude::*;
use simnet::{FaultPlan, Protocol, Topology};

/// Master seed: `FAULT_SEED` env var, or a fixed default.
fn fault_seed() -> u64 {
    std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF00D)
}

/// Deterministic payload of message `i` from rank `src`.
fn payload(src: usize, i: usize, n: usize) -> Vec<u8> {
    (0..n)
        .map(|k| {
            (src as u8)
                .wrapping_mul(31)
                .wrapping_add((i as u8).wrapping_mul(17))
                .wrapping_add(k as u8)
        })
        .collect()
}

/// Two nodes joined by BOTH an SCI rail and a Myrinet rail, each rail
/// carrying its own (decorrelated) copy of `plan` when given.
fn multirail(plan: Option<FaultPlan>) -> Topology {
    let mut t = Topology::new();
    let a = t.add_node("a", 2);
    let b = t.add_node("b", 2);
    let sci = t.add_network(Protocol::Sisci, [a, b]);
    let bip = t.add_network(Protocol::Bip, [a, b]);
    if let Some(plan) = plan {
        let mut sci_plan = plan.clone();
        sci_plan.seed ^= 0x5C1_5C1;
        t.set_fault(sci, sci_plan);
        t.set_fault(bip, plan);
    }
    t
}

/// Sizes straddling the eager→rendezvous switch points of both rails
/// (BIP 7 KB, SCI 8 KB).
const SIZES: [usize; 5] = [1, 512, 7 * 1024, 9 * 1024, 40 * 1024];
const TAG: i32 = 7;

/// Exchange `SIZES` in both directions on the same (sender, tag) stream
/// and return each rank's received payload sequence. Rank 0 sends
/// first; rank 1 receives first — blocking rendezvous sends in both
/// directions at once would deadlock by design, faults or not.
fn run_transfers(topology: Topology) -> Vec<Vec<Vec<u8>>> {
    run_world(
        topology,
        Placement::OneRankPerNode,
        WorldConfig::default(),
        move |comm| {
            let me = comm.rank();
            let peer = 1 - me;
            let mut got = Vec::new();
            if me == 0 {
                for (i, &n) in SIZES.iter().enumerate() {
                    comm.send(&payload(me, i, n), peer, TAG);
                }
            }
            for &n in &SIZES {
                got.push(comm.recv(n, Some(peer), Some(TAG)).0);
            }
            if me == 1 {
                for (i, &n) in SIZES.iter().enumerate() {
                    comm.send(&payload(me, i, n), peer, TAG);
                }
            }
            got
        },
    )
    .expect("faulted world failed to complete")
}

fn expected_from(src: usize) -> Vec<Vec<u8>> {
    SIZES
        .iter()
        .enumerate()
        .map(|(i, &n)| payload(src, i, n))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The liveness + integrity property of the reliability sublayer:
    /// under ANY survivable plan (loss < 1, finite down windows) every
    /// transfer completes, and payloads arrive intact in per-(sender,
    /// tag) order — exactly the fault-free sequence.
    #[test]
    fn survivable_plans_preserve_payload_and_order(
        loss_pm in 0u64..600,       // per-mille: loss in [0, 0.6)
        ack_loss_pm in 0u64..300,   // per-mille: ack loss in [0, 0.3)
        down_start in 50_000u64..2_000_000,
        down_len in 10_000u64..500_000,
        salt in 0u64..u64::MAX,
    ) {
        let plan = FaultPlan::new(fault_seed() ^ salt)
            .with_loss(loss_pm as f64 / 1000.0)
            .with_ack_loss(ack_loss_pm as f64 / 1000.0)
            .with_down(VirtualTime(down_start), VirtualTime(down_start + down_len));
        prop_assert!(plan.is_survivable());
        let got = run_transfers(multirail(Some(plan)));
        prop_assert_eq!(&got[0], &expected_from(1), "rank 0's received stream");
        prop_assert_eq!(&got[1], &expected_from(0), "rank 1's received stream");
    }
}

/// One rail of a dual-rail link goes hard down mid-stream: the first
/// striped rendezvous uses both rails, then the Myrinet rail dies and
/// the second transfer must detect the dead pair (retransmits
/// exhausted), fail over, and complete on SCI alone.
#[test]
fn rail_hard_down_mid_stream_fails_over() {
    let mut t = Topology::new();
    let a = t.add_node("a", 2);
    let b = t.add_node("b", 2);
    t.add_network(Protocol::Sisci, [a, b]);
    t.add_network_with_fault(
        Protocol::Bip,
        FaultPlan::new(fault_seed()).link_down_from(VirtualTime(2_000_000)),
        [a, b],
    );
    let config = WorldConfig {
        remote: RemoteDeviceKind::ChMad(ChMadConfig {
            policy: PolicyMode::Striped,
            ..ChMadConfig::default()
        }),
        ..WorldConfig::default()
    };
    const N: usize = 4 << 20;
    const MSGS: usize = 2;
    let (results, _kernel, session) =
        run_world_full(t, Placement::OneRankPerNode, config, move |comm| {
            if comm.rank() == 0 {
                for i in 0..MSGS {
                    comm.send(&payload(0, i, N), 1, i as i32);
                }
                true
            } else {
                (0..MSGS).all(|i| comm.recv(N, Some(0), Some(i as i32)).0 == payload(0, i, N))
            }
        })
        .expect("failover world failed to complete");
    assert_eq!(results, vec![true, true], "payloads survived the failover");
    assert!(
        session.failovers() >= 1,
        "expected at least one rail failover, got {}",
        session.failovers()
    );
    let c = session.fault_counters();
    assert!(c.dead_pairs >= 1, "BIP pair should be declared dead: {c:?}");
    assert!(
        c.drops >= madeleine::MAX_SEND_ATTEMPTS as u64,
        "every attempt on the dead rail drops: {c:?}"
    );
    assert!(
        c.retransmits >= madeleine::MAX_SEND_ATTEMPTS as u64 - 1,
        "the dead rail is retried to exhaustion: {c:?}"
    );
}

/// Bit-identical replay: the same seed gives the same results, the same
/// virtual end time, and the same fault counters — the whole point of
/// plan-as-pure-data fault injection.
#[test]
fn faulted_runs_are_seed_deterministic() {
    let run = || {
        let plan = FaultPlan::new(fault_seed())
            .with_loss(0.25)
            .with_ack_loss(0.25)
            .with_down(VirtualTime(100_000), VirtualTime(400_000));
        let sizes: Vec<usize> = SIZES.to_vec();
        let (results, kernel, session) = run_world_full(
            multirail(Some(plan)),
            Placement::OneRankPerNode,
            WorldConfig::default(),
            move |comm| {
                let me = comm.rank();
                let peer = 1 - me;
                if me == 0 {
                    for (i, &n) in sizes.iter().enumerate() {
                        comm.send(&payload(me, i, n), peer, TAG);
                    }
                    Vec::new()
                } else {
                    sizes
                        .iter()
                        .map(|&n| comm.recv(n, Some(peer), Some(TAG)).0)
                        .collect()
                }
            },
        )
        .expect("deterministic faulted world failed");
        (
            results,
            kernel.end_time(),
            session.fault_counters(),
            session.failovers(),
            session.rndv_reissues(),
        )
    };
    assert_eq!(run(), run());
}

/// A rank that finalizes with peer messages still in flight must not
/// strand them: the polling loop notices TERM first (the degradation
/// window delays every data arrival by 5 ms while loop-back TERM is
/// immune), then drains the backlog into the engine's unexpected queue
/// before terminating.
#[test]
fn finalize_drains_in_flight_backlog() {
    let kernel = Kernel::new(CostModel::calibrated());
    let mut t = Topology::new();
    let a = t.add_node("a", 1);
    let b = t.add_node("b", 1);
    t.add_network_with_fault(
        Protocol::Sisci,
        FaultPlan::new(fault_seed()).with_degraded(
            VirtualTime(0),
            VirtualTime(10_000_000),
            VirtualDuration::from_millis(5),
        ),
        [a, b],
    );
    let session = SessionBuilder::new(t)
        .one_rank_per_node()
        .build(&kernel)
        .expect("valid 2-rank topology");
    let engines: Vec<_> = (0..2)
        .map(|r| Engine::new(&kernel, r, AdiCosts::calibrated()))
        .collect();
    let dev = ChMad::new(
        &kernel,
        session,
        engines.clone(),
        AdiCosts::calibrated(),
        ChMadConfig::default(),
    );
    const MSGS: usize = 10;
    const LEN: usize = 64;
    let sender = dev.clone();
    kernel.spawn("rank0", move || {
        let pollers = sender.clone().start_rank(0);
        for i in 0..MSGS {
            let env = Envelope {
                src: 0,
                tag: i as i32,
                context: 0,
                len: LEN,
            };
            sender.send(0, 1, env, Bytes::from(payload(0, i, LEN)), false);
        }
        sender.finalize_rank(0);
        for p in pollers {
            p.join();
        }
    });
    let receiver = dev.clone();
    let engine1 = engines[1].clone();
    let h = kernel.spawn("rank1", move || {
        let pollers = receiver.clone().start_rank(1);
        // Finalize at 1 ms: all ten sends are posted (the sender needs
        // only microseconds of CPU) but none has arrived yet — the
        // degradation window holds every arrival until ~5 ms.
        marcel::advance(VirtualDuration::from_millis(1));
        receiver.finalize_rank(1);
        for p in pollers {
            p.join();
        }
        (engine1.depths(), engine1.unexpected_envelopes())
    });
    kernel.run().expect("finalize-under-backlog run failed");
    let ((posted, unexpected, rndv), envelopes) = h.join_outcome().expect("rank1 finished");
    assert_eq!(posted, 0);
    assert_eq!(rndv, 0);
    assert_eq!(
        unexpected, MSGS,
        "every in-flight message was drained into the engine"
    );
    let tags: Vec<i32> = envelopes.iter().map(|e| e.tag).collect();
    assert_eq!(
        tags,
        (0..MSGS as i32).collect::<Vec<_>>(),
        "drained messages keep their send order"
    );
}
