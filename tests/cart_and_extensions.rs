//! Cartesian topologies, the extended collectives (exscan,
//! reduce_scatter), and their interaction with the heterogeneous
//! cluster.

use mpich::{run_world, CartComm, Placement, ReduceOp, WorldConfig};
use simnet::{Protocol, Topology};

fn world<T: Send + 'static>(
    n: usize,
    f: impl Fn(&mpich::Communicator) -> T + Send + Sync + 'static,
) -> Vec<T> {
    run_world(
        Topology::single_network(n, Protocol::Sisci),
        Placement::OneRankPerNode,
        WorldConfig::default(),
        f,
    )
    .expect("world completes")
}

#[test]
fn cart_coords_round_trip() {
    let results = world(6, |comm| {
        let cart = CartComm::create(comm, &[2, 3], &[false, true]);
        let coords = cart.my_coords();
        let back = cart
            .rank_of(&coords.iter().map(|&c| c as isize).collect::<Vec<_>>())
            .unwrap();
        (coords, back)
    });
    for (rank, (coords, back)) in results.iter().enumerate() {
        assert_eq!(*back, rank);
        assert_eq!(coords[0], rank / 3);
        assert_eq!(coords[1], rank % 3);
    }
}

#[test]
fn cart_shift_boundaries_and_wrap() {
    let results = world(6, |comm| {
        let cart = CartComm::create(comm, &[2, 3], &[false, true]);
        (cart.shift(0, 1), cart.shift(1, 1))
    });
    // Rank 0 = (0,0): row shift: src None (no row -1), dst (1,0)=3.
    assert_eq!(results[0].0, (None, Some(3)));
    // Column shift is periodic: src (0,2)=2, dst (0,1)=1.
    assert_eq!(results[0].1, (Some(2), Some(1)));
    // Rank 5 = (1,2): row shift: src (0,2)=2, dst None.
    assert_eq!(results[5].0, (Some(2), None));
    // Column wrap: src (1,1)=4, dst (1,0)=3.
    assert_eq!(results[5].1, (Some(4), Some(3)));
}

#[test]
fn cart_halo_exchange_2d() {
    // A 2x3 periodic grid: everyone sendrecvs with the +1 column
    // neighbour; values must rotate within a row.
    let results = world(6, |comm| {
        let cart = CartComm::create(comm, &[2, 3], &[true, true]);
        let (src, dst) = cart.shift(1, 1);
        let (data, _) = comm.sendrecv(
            &[comm.rank() as u8],
            dst.unwrap(),
            0,
            8,
            Some(src.unwrap()),
            Some(0),
        );
        data[0] as usize
    });
    // Rank r=(i,j) receives from (i, j-1 mod 3).
    assert_eq!(results, vec![2, 0, 1, 5, 3, 4]);
}

#[test]
fn exscan_prefaccording_to_spec() {
    let results = world(5, |comm| {
        let me = comm.rank() as i64 + 1;
        comm.exscan_vec(&[me], ReduceOp::Sum)
    });
    assert_eq!(results[0], None);
    assert_eq!(results[1], Some(vec![1]));
    assert_eq!(results[2], Some(vec![3]));
    assert_eq!(results[3], Some(vec![6]));
    assert_eq!(results[4], Some(vec![10]));
}

#[test]
fn reduce_scatter_distributes_blocks() {
    let n = 4;
    let results = world(n, move |comm| {
        let me = comm.rank() as i64;
        // Contribution: element (r*2 + k) gets value me + 1 so the
        // reduction per element is sum(1..=n) = 10.
        let contribution: Vec<i64> = (0..n * 2).map(|i| (me + 1) * (i as i64 + 1)).collect();
        comm.reduce_scatter_vec(&contribution, 2, ReduceOp::Sum)
    });
    // Sum over ranks of (me+1) = 10; element i of the reduction is
    // 10 * (i + 1). Rank r gets elements 2r, 2r+1.
    for (r, block) in results.iter().enumerate() {
        let base = 2 * r as i64;
        assert_eq!(block, &vec![10 * (base + 1), 10 * (base + 2)]);
    }
}

#[test]
fn balanced_dims_cover_meta_cluster() {
    // 2D decomposition of the 6-node meta-cluster with a halo exchange
    // across heterogeneous links.
    let results = run_world(
        Topology::meta_cluster(3),
        Placement::OneRankPerNode,
        WorldConfig::default(),
        |comm| {
            let dims = CartComm::balanced_dims(comm.size(), 2);
            let cart = CartComm::create(comm, &dims, &[true, true]);
            let (src, dst) = cart.shift(0, 1);
            let (data, _) = comm.sendrecv(
                &mpich::to_bytes(&[comm.rank() as i64]),
                dst.unwrap(),
                0,
                16,
                Some(src.unwrap()),
                Some(0),
            );
            mpich::from_bytes::<i64>(&data)[0]
        },
    )
    .unwrap();
    // Everyone received from a distinct neighbour.
    let mut seen = results.clone();
    seen.sort_unstable();
    assert_eq!(seen, (0..6).map(|r| r as i64).collect::<Vec<_>>());
}

#[test]
fn exscan_and_scan_agree() {
    let results = world(6, |comm| {
        let me = [comm.rank() as i64 * 3 + 1];
        let inclusive = comm.scan_vec(&me, ReduceOp::Sum)[0];
        let exclusive = comm.exscan_vec(&me, ReduceOp::Sum).map(|v| v[0]);
        (inclusive, exclusive)
    });
    for (r, (incl, excl)) in results.iter().enumerate() {
        let mine = r as i64 * 3 + 1;
        match excl {
            None => assert_eq!(r, 0),
            Some(e) => assert_eq!(e + mine, *incl),
        }
    }
}
