//! End-to-end tests for the hot-path PR: idle-channel poll parking at
//! the MPI level (the paper's §3.3 / Figure 9 scenario), parking under
//! fault injection, and parking determinism.
//!
//! The engine-level matching-store equivalence lives in
//! `tests/matching_equivalence.rs`; the kernel-level parking unit tests
//! live in `crates/marcel/src/poll.rs`.

use bench::pingpong::fig9_topology;
use marcel::{VirtualDuration, VirtualTime};
use mpich::{run_world, Placement, PollPolicy, WorldConfig};
use simnet::{FaultPlan, Protocol, Topology};

/// Steady-state SCI one-way ping-pong latency: 32 warm-up exchanges
/// (plenty for `Parking` to park an idle TCP channel at the default
/// `park_after = 8`), then a timed 16-exchange window. Virtual time,
/// so the result is exact and deterministic.
fn steady_sci_oneway(with_tcp: bool, poll: PollPolicy) -> VirtualDuration {
    let results = run_world(
        fig9_topology(with_tcp),
        Placement::OneRankPerNode,
        WorldConfig {
            poll,
            ..WorldConfig::default()
        },
        |comm| {
            const WARM: usize = 32;
            const ITERS: u64 = 16;
            if comm.rank() == 0 {
                let data = vec![0u8; 4];
                for _ in 0..WARM {
                    comm.send(&data, 1, 0);
                    comm.recv(4, Some(1), Some(0));
                }
                let t0 = marcel::now();
                for _ in 0..ITERS {
                    comm.send(&data, 1, 0);
                    comm.recv(4, Some(1), Some(0));
                }
                Some((marcel::now() - t0) / (2 * ITERS))
            } else if comm.rank() == 1 {
                for _ in 0..WARM + ITERS as usize {
                    let (data, _) = comm.recv(4, Some(0), Some(0));
                    comm.send(&data, 0, 0);
                }
                None
            } else {
                None
            }
        },
    )
    .expect("fig9 world failed");
    results
        .into_iter()
        .flatten()
        .next()
        .expect("rank 0 measured")
}

/// The §3.3 headline: under `Seed`, opening an idle TCP channel taxes
/// every SCI detection; under `Parking` the steady-state SCI latency
/// with an idle TCP channel equals the SCI-only latency exactly.
#[test]
fn parking_removes_idle_tcp_tax_at_mpi_level() {
    let seed_alone = steady_sci_oneway(false, PollPolicy::Seed);
    let seed_taxed = steady_sci_oneway(true, PollPolicy::Seed);
    assert!(
        seed_taxed > seed_alone,
        "seed: idle TCP should tax SCI latency ({seed_taxed:?} vs {seed_alone:?})"
    );

    let park_alone = steady_sci_oneway(false, PollPolicy::Parking);
    let park_taxed = steady_sci_oneway(true, PollPolicy::Parking);
    assert_eq!(
        park_taxed, park_alone,
        "parking: steady-state SCI latency must not see the idle TCP channel"
    );
    // Parking never penalizes the busy channel itself.
    assert_eq!(park_alone, seed_alone);
}

/// Deterministic payload of message `i` from rank `src`.
fn payload(src: usize, i: usize, n: usize) -> Vec<u8> {
    (0..n)
        .map(|k| {
            (src as u8)
                .wrapping_mul(31)
                .wrapping_add((i as u8).wrapping_mul(17))
                .wrapping_add(k as u8)
        })
        .collect()
}

/// Sizes straddling the eager→rendezvous switch points of both rails.
const SIZES: [usize; 5] = [1, 512, 7 * 1024, 9 * 1024, 40 * 1024];
const TAG: i32 = 7;

/// Two nodes joined by SCI and Myrinet rails, both lossy with a down
/// window on SCI — the `tests/faults.rs` scenario, here run under
/// `Parking`: retransmission-driven revival of a quiet channel must
/// re-arm its poll source, not deliver into a parked one.
#[test]
fn faulted_transfers_survive_under_parking() {
    let mut t = Topology::new();
    let a = t.add_node("a", 2);
    let b = t.add_node("b", 2);
    let plan = FaultPlan::new(0xF00D)
        .with_loss(0.2)
        .with_down(VirtualTime(300_000), VirtualTime(900_000));
    let sci = t.add_network(Protocol::Sisci, [a, b]);
    let bip = t.add_network(Protocol::Bip, [a, b]);
    let mut sci_plan = plan.clone();
    sci_plan.seed ^= 0x5C1_5C1;
    t.set_fault(sci, sci_plan);
    t.set_fault(bip, plan);

    let got = run_world(
        t,
        Placement::OneRankPerNode,
        WorldConfig {
            poll: PollPolicy::Parking,
            ..WorldConfig::default()
        },
        move |comm| {
            let me = comm.rank();
            let peer = 1 - me;
            let mut got = Vec::new();
            if me == 0 {
                for (i, &n) in SIZES.iter().enumerate() {
                    comm.send(&payload(me, i, n), peer, TAG);
                }
            }
            for &n in &SIZES {
                got.push(comm.recv(n, Some(peer), Some(TAG)).0);
            }
            if me == 1 {
                for (i, &n) in SIZES.iter().enumerate() {
                    comm.send(&payload(me, i, n), peer, TAG);
                }
            }
            got
        },
    )
    .expect("faulted parking world failed to complete");

    for (rank, received) in got.iter().enumerate() {
        let from = 1 - rank;
        let want: Vec<Vec<u8>> = SIZES
            .iter()
            .enumerate()
            .map(|(i, &n)| payload(from, i, n))
            .collect();
        assert_eq!(received, &want, "rank {rank} payload mismatch");
    }
}

/// Parking is a deterministic policy: two identical runs produce
/// identical virtual-time results.
#[test]
fn parking_worlds_are_deterministic() {
    let a = steady_sci_oneway(true, PollPolicy::Parking);
    let b = steady_sci_oneway(true, PollPolicy::Parking);
    assert_eq!(a, b);
}
