//! Property tests over *randomly generated* cluster topologies: any
//! connected mix of networks, node counts and SMP widths must run MPI
//! correctly (with forwarding enabled so partial connectivity is fine).

use mpich::{run_world, Placement, ReduceOp, WorldConfig};
use proptest::prelude::*;
use simnet::{NodeId, Protocol, Topology};

#[derive(Debug, Clone)]
struct TopoSpec {
    /// Per-node CPU count (1 or 2), up to 6 nodes.
    cpus: Vec<usize>,
    /// Networks: (protocol index, sorted member set as a bitmask).
    networks: Vec<(usize, u8)>,
}

fn arb_topo() -> impl Strategy<Value = TopoSpec> {
    (
        proptest::collection::vec(1usize..3, 2..6),
        proptest::collection::vec((0usize..3, 0u8..64), 1..4),
    )
        .prop_map(|(cpus, networks)| TopoSpec { cpus, networks })
}

/// Build a topology from the spec, then add a chain of SCI links so the
/// graph is always connected (forwarding handles indirect pairs).
fn build(spec: &TopoSpec) -> Topology {
    let mut t = Topology::new();
    let nodes: Vec<NodeId> = spec
        .cpus
        .iter()
        .enumerate()
        .map(|(i, &c)| t.add_node(format!("n{i}"), c))
        .collect();
    let protos = [Protocol::Tcp, Protocol::Sisci, Protocol::Bip];
    for (p, mask) in &spec.networks {
        let members: Vec<NodeId> = nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, n)| *n)
            .collect();
        if members.len() >= 2 {
            t.add_network(protos[*p], members);
        }
    }
    // Connectivity backbone.
    for w in nodes.windows(2) {
        t.add_network(Protocol::Sisci, [w[0], w[1]]);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn allreduce_works_on_any_connected_topology(spec in arb_topo()) {
        let topology = build(&spec);
        prop_assume!(topology.validate_connected().is_ok());
        let results = run_world(
            topology,
            Placement::OneRankPerCpu,
            WorldConfig::with_forwarding(),
            |comm| {
                let me = comm.rank() as i64;
                comm.allreduce_vec(&[me, 1], ReduceOp::Sum)
            },
        )
        .expect("world must complete on any connected topology");
        let n = results.len() as i64;
        let expected = vec![n * (n - 1) / 2, n];
        for r in results {
            prop_assert_eq!(&r, &expected);
        }
    }

    #[test]
    fn point_to_point_all_pairs(spec in arb_topo()) {
        let topology = build(&spec);
        prop_assume!(topology.validate_connected().is_ok());
        // Every rank sends its rank to every other rank; everyone
        // verifies all receipts — exercising every pairwise path
        // (ch_self, smp_plug, direct ch_mad, forwarded ch_mad).
        let results = run_world(
            topology,
            Placement::OneRankPerCpu,
            WorldConfig::with_forwarding(),
            |comm| {
                let me = comm.rank();
                let n = comm.size();
                let sends: Vec<_> = (0..n)
                    .map(|dst| comm.isend(vec![me as u8; 5], dst, me as i32))
                    .collect();
                let mut ok = true;
                for src in 0..n {
                    let (data, status) = comm.recv(8, Some(src), Some(src as i32));
                    ok &= data == vec![src as u8; 5] && status.source == src;
                }
                for s in sends {
                    s.wait_send();
                }
                ok
            },
        )
        .expect("all-pairs world completes");
        prop_assert!(results.into_iter().all(|ok| ok));
    }
}
