//! The gateway-forwarding extension (the paper's §6 future work):
//! messages crossing heterogeneous networks through gateway nodes, with
//! chunked rendezvous pipelining to preserve bandwidth.

use mpich::{run_world, ChMadConfig, Placement, ReduceOp, RemoteDeviceKind, WorldConfig};
use simnet::{NodeId, Protocol, Topology};

/// a —SCI— b —BIP— c : ranks 0, 1, 2; rank 1 is the gateway.
fn chain() -> Topology {
    let mut t = Topology::new();
    let a = t.add_node("a", 1);
    let b = t.add_node("b", 1);
    let c = t.add_node("c", 1);
    t.add_network(Protocol::Sisci, [a, b]);
    t.add_network(Protocol::Bip, [b, c]);
    t
}

/// Four nodes in a line over three different networks: two gateways.
fn long_chain() -> Topology {
    let mut t = Topology::new();
    let n: Vec<NodeId> = (0..4).map(|i| t.add_node(format!("n{i}"), 1)).collect();
    t.add_network(Protocol::Sisci, [n[0], n[1]]);
    t.add_network(Protocol::Tcp, [n[1], n[2]]);
    t.add_network(Protocol::Bip, [n[2], n[3]]);
    t
}

#[test]
fn eager_message_crosses_one_gateway() {
    let results = run_world(
        chain(),
        Placement::OneRankPerNode,
        WorldConfig::with_forwarding(),
        |comm| {
            if comm.rank() == 0 {
                comm.send(&[1, 2, 3, 4], 2, 7);
                Vec::new()
            } else if comm.rank() == 2 {
                let (data, status) = comm.recv(16, Some(0), Some(7));
                assert_eq!(status.source, 0);
                data
            } else {
                Vec::new() // the gateway rank just runs MPI_Init/Finalize
            }
        },
    )
    .unwrap();
    assert_eq!(results[2], vec![1, 2, 3, 4]);
}

#[test]
fn rendezvous_crosses_one_gateway() {
    let n = 500_000; // far past the elected 8KB switch point
    let results = run_world(
        chain(),
        Placement::OneRankPerNode,
        WorldConfig::with_forwarding(),
        move |comm| {
            if comm.rank() == 0 {
                let payload: Vec<u8> = (0..n).map(|i| (i % 241) as u8).collect();
                comm.send(&payload, 2, 0);
                true
            } else if comm.rank() == 2 {
                let (data, status) = comm.recv(n, Some(0), Some(0));
                status.len == n && data.iter().enumerate().all(|(i, &b)| b == (i % 241) as u8)
            } else {
                true
            }
        },
    )
    .unwrap();
    assert!(results[2]);
}

#[test]
fn two_gateways_and_reverse_direction() {
    let results = run_world(
        long_chain(),
        Placement::OneRankPerNode,
        WorldConfig::with_forwarding(),
        |comm| {
            if comm.rank() == 0 {
                comm.send(&[7; 100], 3, 1);
                let (data, _) = comm.recv(64, Some(3), Some(2));
                data
            } else if comm.rank() == 3 {
                let (data, _) = comm.recv(128, Some(0), Some(1));
                assert_eq!(data, vec![7; 100]);
                comm.send(&[9; 50], 0, 2);
                Vec::new()
            } else {
                Vec::new()
            }
        },
    )
    .unwrap();
    assert_eq!(results[0], vec![9; 50]);
}

#[test]
fn forwarded_messages_preserve_pair_fifo() {
    let results = run_world(
        chain(),
        Placement::OneRankPerNode,
        WorldConfig::with_forwarding(),
        |comm| {
            if comm.rank() == 0 {
                for i in 0..12u8 {
                    // Mix sizes so eager and (chunked) rendezvous
                    // forwarded messages interleave.
                    let size = if i % 4 == 0 { 20_000 } else { 16 };
                    let mut data = vec![0u8; size];
                    data[0] = i;
                    comm.send(&data, 2, 5);
                }
                Vec::new()
            } else if comm.rank() == 2 {
                (0..12)
                    .map(|_| comm.recv(32_768, Some(0), Some(5)).0[0])
                    .collect()
            } else {
                Vec::new()
            }
        },
    )
    .unwrap();
    assert_eq!(results[2], (0..12u8).collect::<Vec<_>>());
}

#[test]
fn collectives_span_the_gateway() {
    let results = run_world(
        long_chain(),
        Placement::OneRankPerNode,
        WorldConfig::with_forwarding(),
        |comm| {
            let me = comm.rank() as i64;
            let sum = comm.allreduce_vec(&[me], ReduceOp::Sum)[0];
            let all = comm.allgather_vec(&[me * 2]);
            (sum, all.len())
        },
    )
    .unwrap();
    for (sum, n) in results {
        assert_eq!(sum, 6);
        assert_eq!(n, 4);
    }
}

/// One-way time for an `n`-byte transfer from rank 0 to rank 2 across
/// the gateway, with the given chunk size.
fn forwarded_oneway(n: usize, chunk: usize) -> marcel::VirtualDuration {
    let cfg = WorldConfig {
        forwarding: true,
        remote: RemoteDeviceKind::ChMad(ChMadConfig {
            fwd_chunk: chunk,
            ..ChMadConfig::default()
        }),
        ..WorldConfig::default()
    };
    let results = run_world(chain(), Placement::OneRankPerNode, cfg, move |comm| {
        if comm.rank() == 0 {
            let payload = vec![3u8; n];
            comm.send(&payload, 2, 0);
            comm.recv(1, Some(2), Some(1));
            None
        } else if comm.rank() == 2 {
            let t0 = marcel::now();
            comm.recv(n, Some(0), Some(0));
            let elapsed = marcel::now() - t0;
            comm.send(&[1], 0, 1);
            Some(elapsed)
        } else {
            None
        }
    })
    .unwrap();
    results.into_iter().flatten().next().unwrap()
}

#[test]
fn chunking_pipelines_the_gateway() {
    // 4 MB across SCI -> gateway -> BIP. Store-and-forward (no chunking)
    // serializes the two hops; 128KB chunks let them overlap, cutting
    // the time by roughly the faster hop's share.
    let n = 4 << 20;
    let store_forward = forwarded_oneway(n, usize::MAX);
    let pipelined = forwarded_oneway(n, 128 * 1024);
    let ratio = pipelined.as_secs_f64() / store_forward.as_secs_f64();
    assert!(
        ratio < 0.75,
        "chunking should pipeline: pipelined {pipelined} vs store-and-forward {store_forward} (ratio {ratio:.2})"
    );
    // And pipelined time approaches the slower hop (SCI at ~82.6 MB/s
    // for 4MB = ~48ms) rather than the sum (~48 + 33 ms).
    let slower_hop_ms = 4.0 / 82.6 * 1e3;
    let measured_ms = pipelined.as_secs_f64() * 1e3;
    assert!(
        measured_ms < slower_hop_ms * 1.35,
        "pipelined {measured_ms:.1}ms vs slower hop {slower_hop_ms:.1}ms"
    );
}

#[test]
fn forwarded_latency_is_roughly_the_sum_of_hops() {
    let via_gateway = forwarded_oneway(16, usize::MAX);
    // Direct SCI and BIP latencies are ~16.4us and ~19.1us through the
    // full MPI stack; a relayed message pays both links plus the gateway
    // software, so expect ~1.2-2.5x the sum of the two raw links.
    let us = via_gateway.as_micros_f64();
    assert!(us > 20.0, "two hops cannot beat one: {us}us");
    assert!(us < 70.0, "gateway overhead out of control: {us}us");
}

#[test]
fn direct_pairs_ignore_forwarding_machinery() {
    // With forwarding enabled, directly connected pairs must behave
    // exactly as without it.
    let t = || Topology::single_network(2, Protocol::Sisci);
    let run = |cfg: WorldConfig| {
        run_world(t(), Placement::OneRankPerNode, cfg, |comm| {
            if comm.rank() == 0 {
                comm.send(&[0u8; 64], 1, 0);
                comm.recv(64, Some(1), Some(0));
                Some(marcel::now())
            } else {
                let (d, _) = comm.recv(64, Some(0), Some(0));
                comm.send(&d, 1 - 1, 0);
                None
            }
        })
        .unwrap()
        .into_iter()
        .flatten()
        .next()
        .unwrap()
    };
    assert_eq!(
        run(WorldConfig::default()),
        run(WorldConfig::with_forwarding())
    );
}
