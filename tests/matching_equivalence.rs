//! Equivalence proptest for the hash-bucketed matching stores
//! (`mpich::matching`) against the seed's linear-scan semantics.
//!
//! MPI matching is FIFO per matching pair: among all queued entries
//! that match, the earliest-queued wins. The seed realized this with a
//! linear scan over one `VecDeque`; the bucketed stores must pick the
//! *identical* entry for every lookup. This test drives both a
//! reference model (literal linear scans over `Vec`s) and the bucketed
//! stores through random interleavings of posts, arrivals, probes, and
//! probe-then-take — with wildcard sources/tags and mixed contexts —
//! and requires the full transcripts to agree.

use mpich::{Envelope, MatchSpec, PostedStore, Tag, UnexpectedStore};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::BoxedStrategy;

#[derive(Clone, Debug)]
enum Op {
    /// Post a receive: consumes the earliest matching unexpected
    /// arrival, or queues.
    Post(MatchSpec),
    /// An envelope arrives: consumes the earliest matching posted
    /// receive, or queues as unexpected.
    Arrive { src: usize, tag: Tag, ctx: u32 },
    /// Probe: earliest matching unexpected arrival, not removed.
    Probe(MatchSpec),
    /// Probe, then take that exact arrival by handle (the
    /// probe/recv-dedup path in the engine).
    ProbeTake(MatchSpec),
}

/// Linear-scan reference: the seed's matching semantics, verbatim.
#[derive(Default)]
struct Reference {
    posted: Vec<(MatchSpec, u32)>,
    unexpected: Vec<(Envelope, u32)>,
}

impl Reference {
    fn arrive(&mut self, env: Envelope) -> Option<u32> {
        let pos = self
            .posted
            .iter()
            .position(|(spec, _)| spec.matches(&env))?;
        Some(self.posted.remove(pos).1)
    }

    fn post(&mut self, spec: &MatchSpec) -> Option<(Envelope, u32)> {
        let pos = self
            .unexpected
            .iter()
            .position(|(env, _)| spec.matches(env))?;
        Some(self.unexpected.remove(pos))
    }

    fn probe(&self, spec: &MatchSpec) -> Option<Envelope> {
        self.unexpected
            .iter()
            .find(|(env, _)| spec.matches(env))
            .map(|(env, _)| *env)
    }

    fn probe_take(&mut self, spec: &MatchSpec) -> Option<(Envelope, u32)> {
        let pos = self
            .unexpected
            .iter()
            .position(|(env, _)| spec.matches(env))?;
        Some(self.unexpected.remove(pos))
    }
}

fn opt_src() -> BoxedStrategy<Option<usize>> {
    prop_oneof![Just(None), (0..3usize).prop_map(Some)].boxed()
}

fn opt_tag() -> BoxedStrategy<Option<Tag>> {
    prop_oneof![Just(None), (0..3 as Tag).prop_map(Some)].boxed()
}

fn spec() -> BoxedStrategy<MatchSpec> {
    (opt_src(), opt_tag(), 0..2u32)
        .prop_map(|(src, tag, context)| MatchSpec { src, tag, context })
        .boxed()
}

fn op() -> BoxedStrategy<Op> {
    prop_oneof![
        spec().prop_map(Op::Post),
        (0..3usize, 0..3 as Tag, 0..2u32).prop_map(|(src, tag, ctx)| Op::Arrive { src, tag, ctx }),
        spec().prop_map(Op::Probe),
        spec().prop_map(Op::ProbeTake),
    ]
    .boxed()
}

/// Run one interleaving through both implementations, comparing every
/// lookup result and the queue contents after every step.
fn check(ops: Vec<Op>) {
    let mut reference = Reference::default();
    let mut posted: PostedStore<u32> = PostedStore::new();
    let mut unexpected: UnexpectedStore<u32> = UnexpectedStore::new();

    for (id, op) in (0u32..).zip(ops) {
        match op {
            Op::Post(spec) => {
                let got = unexpected.take_match(&spec);
                let want = reference.post(&spec);
                assert_eq!(got, want, "post {spec:?}");
                if want.is_none() {
                    posted.insert(spec, id);
                    reference.posted.push((spec, id));
                }
            }
            Op::Arrive { src, tag, ctx } => {
                // `len` doubles as a unique arrival id so envelope
                // equality distinguishes otherwise-identical arrivals.
                let env = Envelope {
                    src,
                    tag,
                    context: ctx,
                    len: id as usize,
                };
                let got = posted.take_match(&env);
                let want = reference.arrive(env);
                assert_eq!(got, want, "arrive {env:?}");
                if want.is_none() {
                    unexpected.insert(env, id);
                    reference.unexpected.push((env, id));
                }
            }
            Op::Probe(spec) => {
                let got = unexpected.find(&spec).map(|(_, env)| env);
                let want = reference.probe(&spec);
                assert_eq!(got, want, "probe {spec:?}");
            }
            Op::ProbeTake(spec) => {
                let got = unexpected
                    .find(&spec)
                    .and_then(|(handle, _)| unexpected.take(handle));
                let want = reference.probe_take(&spec);
                assert_eq!(got, want, "probe-take {spec:?}");
            }
        }
        assert_eq!(posted.len(), reference.posted.len(), "posted depth");
        assert_eq!(
            unexpected.envelopes(),
            reference
                .unexpected
                .iter()
                .map(|(env, _)| *env)
                .collect::<Vec<_>>(),
            "unexpected queue contents/order"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bucketed_stores_match_linear_scan(ops in vec(op(), 0..120)) {
        check(ops.clone());
    }
}

/// A directed interleaving the random mix hits rarely: wildcard posts
/// racing exact posts for the same arrival stream across two contexts.
#[test]
fn wildcard_exact_races_stay_fifo() {
    let mut ops = Vec::new();
    for ctx in 0..2u32 {
        for i in 0..4usize {
            ops.push(Op::Post(MatchSpec {
                src: Some(i % 2),
                tag: Some(0),
                context: ctx,
            }));
            ops.push(Op::Post(MatchSpec {
                src: None,
                tag: Some(0),
                context: ctx,
            }));
        }
        for i in 0..8usize {
            ops.push(Op::Arrive {
                src: i % 3,
                tag: 0,
                ctx,
            });
        }
        ops.push(Op::ProbeTake(MatchSpec {
            src: None,
            tag: None,
            context: ctx,
        }));
    }
    check(ops);
}
