//! Point-to-point MPI semantics, end to end through the full stack
//! (generic layer → ADI engine → devices → Madeleine → simulated links).

use mpich::{run_world, Placement, Status, WorldConfig};
use simnet::{Protocol, Topology};

fn two_ranks<T: Send + 'static>(
    f: impl Fn(&mpich::Communicator) -> T + Send + Sync + 'static,
) -> Vec<T> {
    run_world(
        Topology::single_network(2, Protocol::Sisci),
        Placement::OneRankPerNode,
        WorldConfig::default(),
        f,
    )
    .expect("world completes")
}

#[test]
fn blocking_send_recv_roundtrip() {
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            comm.send(&[1, 2, 3, 4, 5], 1, 42);
            let (data, status) = comm.recv(16, Some(1), Some(43));
            (data, status)
        } else {
            let (data, status) = comm.recv(16, Some(0), Some(42));
            let reply: Vec<u8> = data.iter().rev().copied().collect();
            comm.send(&reply, 0, 43);
            (data, status)
        }
    });
    assert_eq!(results[0].0, vec![5, 4, 3, 2, 1]);
    assert_eq!(results[1].0, vec![1, 2, 3, 4, 5]);
    assert_eq!(
        results[1].1,
        Status {
            source: 0,
            tag: 42,
            len: 5
        }
    );
    assert_eq!(
        results[0].1,
        Status {
            source: 1,
            tag: 43,
            len: 5
        }
    );
}

#[test]
fn zero_byte_messages() {
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            comm.send(&[], 1, 0);
            comm.recv(0, Some(1), Some(1)).1.len
        } else {
            let (data, _) = comm.recv(0, Some(0), Some(0));
            assert!(data.is_empty());
            comm.send(&[], 0, 1);
            0
        }
    });
    assert_eq!(results, vec![0, 0]);
}

#[test]
fn tag_selective_matching() {
    // Rank 0 sends tags 5 then 9; rank 1 receives tag 9 FIRST, then 5.
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            comm.send(&[55], 1, 5);
            comm.send(&[99], 1, 9);
            Vec::new()
        } else {
            let (nine, s9) = comm.recv(8, Some(0), Some(9));
            let (five, s5) = comm.recv(8, Some(0), Some(5));
            assert_eq!(s9.tag, 9);
            assert_eq!(s5.tag, 5);
            vec![nine[0], five[0]]
        }
    });
    assert_eq!(results[1], vec![99, 55]);
}

#[test]
fn any_source_any_tag() {
    let results = run_world(
        Topology::single_network(4, Protocol::Bip),
        Placement::OneRankPerNode,
        WorldConfig::default(),
        |comm| {
            if comm.rank() == 0 {
                let mut seen = Vec::new();
                for _ in 0..3 {
                    let (data, status) = comm.recv(8, None, None);
                    assert_eq!(data[0] as usize, status.source);
                    assert_eq!(status.tag, status.source as i32 * 10);
                    seen.push(status.source);
                }
                seen.sort_unstable();
                seen
            } else {
                let me = comm.rank();
                comm.send(&[me as u8], 0, me as i32 * 10);
                Vec::new()
            }
        },
    )
    .unwrap();
    assert_eq!(results[0], vec![1, 2, 3]);
}

#[test]
fn per_pair_message_order_is_fifo() {
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            for i in 0..20u8 {
                // Alternate sizes so eager/rendezvous interleave (the
                // SCI switch point is 8 KB).
                let size = if i % 3 == 0 { 16 * 1024 } else { 8 };
                let mut data = vec![0u8; size];
                data[0] = i;
                comm.send(&data, 1, 7);
            }
            Vec::new()
        } else {
            let mut order = Vec::new();
            for _ in 0..20 {
                let (data, _) = comm.recv(32 * 1024, Some(0), Some(7));
                order.push(data[0]);
            }
            order
        }
    });
    assert_eq!(results[1], (0..20u8).collect::<Vec<_>>());
}

#[test]
fn isend_irecv_wait() {
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            let r1 = comm.isend(vec![1; 100], 1, 1);
            let r2 = comm.isend(vec![2; 200], 1, 2);
            mpich::wait_all(vec![r1, r2]);
            0
        } else {
            // Post both receives before any data exists, out of order.
            let r2 = comm.irecv(256, Some(0), Some(2));
            let r1 = comm.irecv(256, Some(0), Some(1));
            let (d2, s2) = r2.wait_data();
            let (d1, s1) = r1.wait_data();
            assert_eq!((d1.len(), s1.len), (100, 100));
            assert_eq!((d2.len(), s2.len), (200, 200));
            assert!(d1.iter().all(|&b| b == 1));
            assert!(d2.iter().all(|&b| b == 2));
            1
        }
    });
    assert_eq!(results, vec![0, 1]);
}

#[test]
fn request_test_polls_without_blocking() {
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            // Delay the send so rank 1's first test() sees "not done".
            marcel::advance(marcel::VirtualDuration::from_micros(500));
            comm.send(&[7], 1, 0);
            true
        } else {
            let mut req = comm.irecv(8, Some(0), Some(0));
            let first = req.test();
            while !req.test() {
                marcel::sleep(marcel::VirtualDuration::from_micros(50));
            }
            let (data, _) = req.wait_data();
            assert_eq!(data, vec![7]);
            !first
        }
    });
    assert!(results[1], "first test must have been false");
}

#[test]
fn sendrecv_swaps_without_deadlock() {
    let results = two_ranks(|comm| {
        let me = comm.rank();
        let other = 1 - me;
        let (incoming, status) = comm.sendrecv(&[me as u8; 64], other, 3, 64, Some(other), Some(3));
        assert_eq!(status.source, other);
        incoming[0]
    });
    assert_eq!(results, vec![1, 0]);
}

#[test]
fn head_to_head_large_sends_rendezvous_both_ways() {
    // Both ranks isend 1 MB to each other, then both receive: the
    // rendezvous handshakes cross on the wire.
    let n = 1 << 20;
    let results = two_ranks(move |comm| {
        let me = comm.rank();
        let payload = vec![me as u8; n];
        let send = comm.isend(payload, 1 - me, 0);
        let (data, status) = comm.recv(n, Some(1 - me), Some(0));
        send.wait_send();
        assert_eq!(status.len, n);
        data.iter().all(|&b| b == (1 - me) as u8)
    });
    assert_eq!(results, vec![true, true]);
}

#[test]
fn probe_then_recv_exact_message() {
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            comm.send(&[9; 321], 1, 17);
            0
        } else {
            let status = comm.probe(None, None);
            assert_eq!(status.len, 321);
            assert_eq!(status.tag, 17);
            let (data, _) = comm.recv(status.len, Some(status.source), Some(status.tag));
            data.len()
        }
    });
    assert_eq!(results[1], 321);
}

#[test]
fn iprobe_reports_absence_and_presence() {
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            marcel::advance(marcel::VirtualDuration::from_micros(300));
            comm.send(&[1], 1, 0);
            true
        } else {
            let before = comm.iprobe(Some(0), Some(0)).is_none();
            // Wait out the sender's delay.
            while comm.iprobe(Some(0), Some(0)).is_none() {
                marcel::sleep(marcel::VirtualDuration::from_micros(50));
            }
            let (data, _) = comm.recv(8, Some(0), Some(0));
            assert_eq!(data, vec![1]);
            before
        }
    });
    assert!(results[1]);
}

#[test]
fn truncation_aborts_the_run() {
    let err = run_world(
        Topology::single_network(2, Protocol::Tcp),
        Placement::OneRankPerNode,
        WorldConfig::default(),
        |comm| {
            if comm.rank() == 0 {
                comm.send(&[0; 64], 1, 0);
            } else {
                comm.recv(16, Some(0), Some(0));
            }
        },
    );
    match err {
        Err(marcel::SimError::ThreadPanicked(msg)) => {
            assert!(msg.contains("truncation"), "{msg}");
        }
        other => panic!("expected truncation abort, got {other:?}"),
    }
}

#[test]
fn large_message_integrity_through_rendezvous() {
    let n = 3 * 1024 * 1024 + 137; // odd size, well past every switch point
    let results = two_ranks(move |comm| {
        if comm.rank() == 0 {
            let payload: Vec<u8> = (0..n).map(|i| (i * 31 % 251) as u8).collect();
            comm.send(&payload, 1, 0);
            0u64
        } else {
            let (data, status) = comm.recv(n, Some(0), Some(0));
            assert_eq!(status.len, n);
            assert!(data
                .iter()
                .enumerate()
                .all(|(i, &b)| b == (i * 31 % 251) as u8));
            data.len() as u64
        }
    });
    assert_eq!(results[1], n as u64);
}

#[test]
fn eager_rendezvous_boundary_sizes() {
    // SCI switch point is 8192: exercise n-1, n, n+1.
    let sp = Protocol::Sisci.switch_point();
    let results = two_ranks(move |comm| {
        if comm.rank() == 0 {
            for n in [sp - 1, sp, sp + 1] {
                let payload: Vec<u8> = (0..n).map(|i| (i % 256) as u8).collect();
                comm.send(&payload, 1, n as i32);
            }
            true
        } else {
            for n in [sp - 1, sp, sp + 1] {
                let (data, status) = comm.recv(sp + 1, Some(0), Some(n as i32));
                assert_eq!(status.len, n);
                assert!(data.iter().enumerate().all(|(i, &b)| b == (i % 256) as u8));
            }
            true
        }
    });
    assert_eq!(results, vec![true, true]);
}

#[test]
fn typed_send_recv() {
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            comm.send_slice(&[1.5f64, -2.5, 1e100], 1, 0);
            comm.send_slice(&[i32::MIN, 0, i32::MAX], 1, 1);
            (Vec::new(), Vec::new())
        } else {
            let (floats, _) = comm.recv_vec::<f64>(3, Some(0), Some(0));
            let (ints, _) = comm.recv_vec::<i32>(3, Some(0), Some(1));
            (floats, ints)
        }
    });
    assert_eq!(results[1].0, vec![1.5, -2.5, 1e100]);
    assert_eq!(results[1].1, vec![i32::MIN, 0, i32::MAX]);
}

#[test]
fn derived_datatype_transfer() {
    use mpich::{BaseType, Datatype};
    let results = two_ranks(|comm| {
        // A 4x4 f64 matrix; send the 2nd column.
        let dt = Datatype::vector(4, 1, 4, Datatype::base(BaseType::Float64));
        if comm.rank() == 0 {
            let matrix: Vec<f64> = (0..16).map(|i| i as f64).collect();
            comm.send_typed(&mpich::to_bytes(&matrix), &dt, 1, 1, 0);
            Vec::new()
        } else {
            let mut buf = vec![0u8; 16 * 8];
            comm.recv_typed(&mut buf, &dt, 1, Some(0), Some(0));
            let matrix: Vec<f64> = mpich::from_bytes(&buf);
            // Column elements land at positions 1, 5, 9, 13... actually
            // at 0, 4, 8, 12 of the receive layout (same datatype).
            vec![matrix[0], matrix[4], matrix[8], matrix[12]]
        }
    });
    assert_eq!(results[1], vec![0.0, 4.0, 8.0, 12.0]);
}

#[test]
fn wait_any_returns_first_arrival() {
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            marcel::advance(marcel::VirtualDuration::from_micros(100));
            comm.send(&[2], 1, 2); // tag 2 first
            marcel::advance(marcel::VirtualDuration::from_micros(2_000));
            comm.send(&[1], 1, 1);
            0
        } else {
            let mut reqs = vec![
                comm.irecv(8, Some(0), Some(1)),
                comm.irecv(8, Some(0), Some(2)),
            ];
            let (_, data, status) = mpich::wait_any(&mut reqs);
            // The tag-2 message was sent 2ms before tag-1.
            assert_eq!(status.tag, 2);
            let rest = reqs.remove(0).wait_data();
            assert_eq!(rest.1.tag, 1);
            data.unwrap()[0]
        }
    });
    assert_eq!(results[1], 2);
}

#[test]
fn self_send_through_ch_self() {
    let results = two_ranks(|comm| {
        let me = comm.rank();
        let send = comm.isend(vec![me as u8; 8], me, 0);
        let (data, status) = comm.recv(8, Some(me), Some(0));
        send.wait_send();
        assert_eq!(status.source, me);
        data[0] as usize == me
    });
    assert_eq!(results, vec![true, true]);
}

#[test]
fn unexpected_messages_buffer_until_recv() {
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            for i in 0..5u8 {
                comm.send(&[i], 1, i as i32);
            }
            0
        } else {
            // Let everything arrive unexpected first.
            marcel::sleep(marcel::VirtualDuration::from_millis(5));
            let mut sum = 0usize;
            // Drain in reverse tag order to prove matching is by tag,
            // not arrival.
            for i in (0..5).rev() {
                let (data, _) = comm.recv(8, Some(0), Some(i));
                assert_eq!(data[0], i as u8);
                sum += data[0] as usize;
            }
            sum
        }
    });
    assert_eq!(results[1], 10);
}

#[test]
fn persistent_requests_restart() {
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            let psend = comm.send_init(vec![42; 128], 1, 3);
            for _ in 0..4 {
                psend.start().wait_send();
            }
            0
        } else {
            let precv = comm.recv_init(256, Some(0), Some(3));
            let mut total = 0usize;
            for _ in 0..4 {
                let (data, status) = precv.start().wait_data();
                assert_eq!(status.source, 0);
                assert_eq!(data, vec![42; 128]);
                total += data.len();
            }
            total
        }
    });
    assert_eq!(results[1], 512);
}

#[test]
fn persistent_send_overlaps_with_computation() {
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            let psend = comm.send_init(vec![1; 64], 1, 0);
            let req = psend.start();
            // Compute while the send progresses.
            marcel::advance(marcel::VirtualDuration::from_micros(100));
            req.wait_send();
            marcel::now().as_micros_f64() < 150.0
        } else {
            comm.recv(64, Some(0), Some(0));
            true
        }
    });
    assert!(results[0], "persistent send must overlap computation");
}

#[test]
fn ssend_completes_only_after_recv_posted() {
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            // Tiny message: plain send would complete eagerly, long
            // before the receiver shows up at t=2ms.
            comm.ssend(&[1, 2, 3], 1, 0);
            marcel::now()
        } else {
            marcel::sleep(marcel::VirtualDuration::from_millis(2));
            let (data, _) = comm.recv(8, Some(0), Some(0));
            assert_eq!(data, vec![1, 2, 3]);
            marcel::now()
        }
    });
    assert!(
        results[0].as_secs_f64() >= 0.002,
        "ssend returned at {} before the receive was posted",
        results[0]
    );
}

#[test]
fn plain_send_is_not_synchronous() {
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            comm.send(&[1], 1, 0);
            marcel::now()
        } else {
            marcel::sleep(marcel::VirtualDuration::from_millis(2));
            comm.recv(8, Some(0), Some(0));
            marcel::now()
        }
    });
    assert!(
        results[0].as_secs_f64() < 0.001,
        "eager send must complete before the late receive: {}",
        results[0]
    );
}

#[test]
fn issend_overlaps_then_synchronizes() {
    let results = two_ranks(|comm| {
        if comm.rank() == 0 {
            let req = comm.issend(vec![7; 16], 1, 0);
            // Free to compute while the handshake is pending.
            marcel::advance(marcel::VirtualDuration::from_micros(100));
            req.wait_send();
            marcel::now()
        } else {
            marcel::sleep(marcel::VirtualDuration::from_millis(1));
            comm.recv(16, Some(0), Some(0));
            marcel::now()
        }
    });
    assert!(results[0].as_secs_f64() >= 0.001);
}

#[test]
fn ssend_through_smp_plug() {
    let results = run_world(
        {
            let mut t = Topology::new();
            let a = t.add_node("a", 2);
            let b = t.add_node("b", 1);
            t.add_network(Protocol::Sisci, [a, b]);
            t
        },
        mpich::Placement::OneRankPerCpu,
        WorldConfig::default(),
        |comm| {
            // Ranks 0,1 share node a.
            if comm.rank() == 0 {
                comm.ssend(&[9], 1, 0);
                marcel::now()
            } else if comm.rank() == 1 {
                marcel::sleep(marcel::VirtualDuration::from_millis(3));
                comm.recv(8, Some(0), Some(0));
                marcel::now()
            } else {
                marcel::now()
            }
        },
    )
    .unwrap();
    assert!(
        results[0].as_secs_f64() >= 0.003,
        "smp ssend synchronous: {}",
        results[0]
    );
}
