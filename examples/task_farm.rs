//! A master/worker task farm across the heterogeneous meta-cluster:
//! the master hands out work units and collects results with
//! `MPI_Waitany`-style completion, so fast workers (SCI cluster, low
//! latency to the master) naturally get more units than the ones
//! reachable only over Fast-Ethernet — demonstrating how network
//! heterogeneity shapes load balance.
//!
//! ```sh
//! cargo run --example task_farm
//! ```

use mpich::{run_world_kernel, Placement, WorldConfig};
use simnet::Topology;

const UNITS: usize = 60;
const TAG_WORK: i32 = 1;
const TAG_RESULT: i32 = 2;
const TAG_STOP: i32 = 3;

fn main() {
    // Master on an SCI-cluster node; workers spread across both
    // clusters (SCI neighbours + Myrinet nodes across TCP).
    let (results, kernel) = run_world_kernel(
        Topology::meta_cluster(3),
        Placement::OneRankPerNode,
        WorldConfig::default(),
        |comm| {
            let me = comm.rank();
            let n = comm.size();
            if me == 0 {
                // ---- master ----
                let mut next_unit = 0usize;
                let mut done = 0usize;
                let mut per_worker = vec![0usize; n];
                // Prime every worker with one unit.
                for w in 1..n {
                    comm.send_slice(&[next_unit as i64], w, TAG_WORK);
                    next_unit += 1;
                }
                while done < UNITS {
                    // Collect any result, then refill that worker.
                    let (data, status) = comm.recv(16, None, Some(TAG_RESULT));
                    let result: Vec<i64> = mpich::from_bytes(&data);
                    assert_eq!(result[0] % 2, 1, "workers produce odd results");
                    done += 1;
                    per_worker[status.source] += 1;
                    if next_unit < UNITS {
                        comm.send_slice(&[next_unit as i64], status.source, TAG_WORK);
                        next_unit += 1;
                    } else {
                        comm.send(&[], status.source, TAG_STOP);
                    }
                }
                per_worker
            } else {
                // ---- worker ----
                let mut handled = 0usize;
                loop {
                    let status = comm.probe(Some(0), None);
                    if status.tag == TAG_STOP {
                        comm.recv(0, Some(0), Some(TAG_STOP));
                        break;
                    }
                    let (data, _) = comm.recv(16, Some(0), Some(TAG_WORK));
                    let unit = mpich::from_bytes::<i64>(&data)[0];
                    // "Compute": virtual work proportional to the unit.
                    marcel::advance(marcel::VirtualDuration::from_micros(120));
                    let result = unit * 2 + 1;
                    comm.send_slice(&[result], 0, TAG_RESULT);
                    handled += 1;
                }
                vec![handled]
            }
        },
    )
    .expect("task farm completes");

    let per_worker = &results[0];
    println!("units completed per worker (master view):");
    let mut total = 0;
    for (w, count) in per_worker.iter().enumerate().skip(1) {
        let cluster = if w <= 2 {
            "SCI cluster "
        } else {
            "Myrinet/TCP"
        };
        println!("  worker {w} [{cluster}]: {count:>3} units");
        total += count;
    }
    assert_eq!(total, UNITS);
    // Workers' own counts must agree with the master's bookkeeping.
    for (w, counts) in results.iter().enumerate().skip(1) {
        assert_eq!(counts[0], per_worker[w], "worker {w} disagrees");
    }
    let sci: usize = per_worker[1..=2].iter().sum();
    let far: usize = per_worker[3..].iter().sum();
    println!("\nSCI-cluster workers: {sci} units; cross-cluster (TCP) workers: {far} units");
    println!(
        "total virtual time: {:.3} ms",
        kernel.end_time().as_secs_f64() * 1e3
    );
    println!(
        "\nlow-latency workers get more units: {}",
        sci / 2 >= far / 3
    );
}
