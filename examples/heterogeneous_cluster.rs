//! 1-D Jacobi heat diffusion across a heterogeneous cluster of clusters —
//! the workload class the paper's introduction motivates: a single MPI
//! application spanning an SCI cluster and a Myrinet cluster joined by
//! Fast-Ethernet, with every halo exchange riding the fastest network
//! available between its two ranks.
//!
//! ```sh
//! cargo run --example heterogeneous_cluster
//! ```

use mpich::{run_world_kernel, Placement, ReduceOp, WorldConfig};
use simnet::{NodeId, Topology};

const CELLS_PER_RANK: usize = 4096;
const ITERATIONS: usize = 50;

fn main() {
    let topology = Topology::meta_cluster(2); // 4 nodes
                                              // Show which network each neighbouring pair will use.
    println!("halo links (rank pair -> network):");
    for a in 0..3usize {
        let b = a + 1;
        let best = topology
            .best_network_between(NodeId(a), NodeId(b))
            .expect("meta-cluster is fully connected");
        println!("  ranks {a}-{b}: {}", topology.network(best).model.name);
    }

    let (results, kernel) = run_world_kernel(
        topology,
        Placement::OneRankPerNode,
        WorldConfig::default(),
        |comm| {
            let me = comm.rank();
            let n = comm.size();
            // Local strip of the rod, hot at the global left end.
            let mut cells = vec![0.0f64; CELLS_PER_RANK + 2]; // +2 halo
            if me == 0 {
                cells[0] = 100.0; // boundary condition
            }
            let mut residual = f64::INFINITY;
            for _ in 0..ITERATIONS {
                // Halo exchange with neighbours (fastest shared network,
                // chosen by ch_mad per pair).
                if me + 1 < n {
                    let (incoming, _) = comm.sendrecv(
                        &mpich::to_bytes(&[cells[CELLS_PER_RANK]]),
                        me + 1,
                        1,
                        8,
                        Some(me + 1),
                        Some(2),
                    );
                    cells[CELLS_PER_RANK + 1] = mpich::from_bytes::<f64>(&incoming)[0];
                }
                if me > 0 {
                    let (incoming, _) = comm.sendrecv(
                        &mpich::to_bytes(&[cells[1]]),
                        me - 1,
                        2,
                        8,
                        Some(me - 1),
                        Some(1),
                    );
                    cells[0] = mpich::from_bytes::<f64>(&incoming)[0];
                }
                // Jacobi sweep; model the FLOP cost in virtual time too.
                let mut next = cells.clone();
                let mut local_delta: f64 = 0.0;
                for i in 1..=CELLS_PER_RANK {
                    next[i] = 0.5 * (cells[i - 1] + cells[i + 1]);
                    local_delta = local_delta.max((next[i] - cells[i]).abs());
                }
                // ~3 flops/cell at ~100 MFLOPS on a PII-450.
                marcel::advance(marcel::VirtualDuration::from_nanos(
                    (CELLS_PER_RANK * 3) as u64 * 10,
                ));
                cells = next;
                // Global convergence check: an allreduce spanning both
                // clusters every iteration.
                residual = comm.allreduce_vec(&[local_delta], ReduceOp::Max)[0];
            }
            let heat: f64 = cells[1..=CELLS_PER_RANK].iter().sum();
            (me, heat, residual)
        },
    )
    .expect("jacobi world runs");

    println!("\nrank  local-heat  final-residual");
    for (me, heat, residual) in &results {
        println!("{me:>4}  {heat:>10.4}  {residual:>14.6}");
    }
    let residuals: Vec<f64> = results.iter().map(|(_, _, r)| *r).collect();
    assert!(
        residuals.windows(2).all(|w| w[0] == w[1]),
        "allreduce agreement"
    );
    println!(
        "\n{} Jacobi iterations across 2 clusters took {:.3} ms of virtual time",
        ITERATIONS,
        kernel.end_time().as_secs_f64() * 1e3
    );
}
