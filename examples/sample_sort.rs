//! Parallel sample sort across the meta-cluster: a collective-heavy
//! workload (gather, bcast, alltoall) whose exchange phase moves real
//! bulk data across all three networks at once.
//!
//! ```sh
//! cargo run --example sample_sort
//! ```

use mpich::{run_world_kernel, Placement, ReduceOp, WorldConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::Topology;

const KEYS_PER_RANK: usize = 20_000;

fn main() {
    let (results, kernel) = run_world_kernel(
        Topology::meta_cluster(2),
        Placement::OneRankPerCpu, // 8 ranks
        WorldConfig::default(),
        |comm| {
            let me = comm.rank();
            let n = comm.size();
            // 1) Local keys (deterministic per rank).
            let mut rng = StdRng::seed_from_u64(0xBEEF ^ me as u64);
            let mut keys: Vec<i64> = (0..KEYS_PER_RANK)
                .map(|_| rng.gen_range(0..1_000_000))
                .collect();
            keys.sort_unstable();
            // Model the local sort cost (~n log n comparisons at ~5ns).
            marcel::advance(marcel::VirtualDuration::from_nanos(
                (KEYS_PER_RANK as f64 * (KEYS_PER_RANK as f64).log2() * 5.0) as u64,
            ));

            // 2) Sample splitters: every rank contributes n-1 samples;
            //    rank 0 picks global splitters and broadcasts them.
            let samples: Vec<i64> = (1..n).map(|i| keys[i * KEYS_PER_RANK / n]).collect();
            let gathered = comm.gather_vec(0, &samples);
            let splitters = comm.bcast_vec::<i64>(
                0,
                gathered.map(|all| {
                    let mut flat: Vec<i64> = all.into_iter().flatten().collect();
                    flat.sort_unstable();
                    (1..n).map(|i| flat[i * flat.len() / n]).collect()
                }),
            );

            // 3) Partition local keys by splitter and alltoall them.
            let mut parts: Vec<Vec<u8>> = Vec::with_capacity(n);
            let mut start = 0usize;
            #[allow(clippy::needless_range_loop)]
            for d in 0..n {
                let end = if d + 1 == n {
                    keys.len()
                } else {
                    keys.partition_point(|&k| k < splitters[d])
                };
                parts.push(mpich::to_bytes(&keys[start..end]));
                start = end;
            }
            let incoming = comm.alltoall_bytes(parts);

            // 4) Merge the received runs.
            let mut mine: Vec<i64> = incoming
                .iter()
                .flat_map(|p| mpich::from_bytes::<i64>(p))
                .collect();
            mine.sort_unstable();

            // 5) Verify the global order: my max <= next rank's min.
            let boundaries = comm.allgather_vec(&[
                *mine.first().unwrap_or(&i64::MAX),
                *mine.last().unwrap_or(&i64::MIN),
            ]);
            let sorted_globally = boundaries
                .windows(2)
                .all(|w| w[0][1] <= w[1][0] || w[1][0] == i64::MAX);
            let total = comm.allreduce_vec(&[mine.len() as i64], ReduceOp::Sum)[0];
            (mine.len(), sorted_globally, total)
        },
    )
    .expect("sample sort completes");

    println!("rank  keys-after-exchange  globally-sorted");
    for (r, (len, sorted, _)) in results.iter().enumerate() {
        println!("{r:>4}  {len:>19}  {sorted}");
    }
    let total: i64 = results[0].2;
    assert_eq!(total as usize, KEYS_PER_RANK * results.len(), "no key lost");
    assert!(results.iter().all(|(_, sorted, _)| *sorted));
    println!(
        "\nsorted {} keys across 8 ranks / 3 networks in {:.3} ms of virtual time",
        total,
        kernel.end_time().as_secs_f64() * 1e3
    );
}
