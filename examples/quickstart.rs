//! Quickstart: run a 6-rank MPI program over the paper's meta-cluster
//! (an SCI cluster + a Myrinet cluster, Fast-Ethernet everywhere) and
//! watch the multi-protocol `ch_mad` device pick the right network per
//! pair.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mpich::{run_world, Placement, ReduceOp, WorldConfig};
use simnet::Topology;

fn main() {
    // 3 SCI nodes + 3 Myrinet nodes, all on Fast-Ethernet (paper §1's
    // "cluster of clusters").
    let topology = Topology::meta_cluster(3);
    println!("nodes: {}", topology.nodes().len());
    for (i, net) in topology.networks().iter().enumerate() {
        println!(
            "network {i}: {:<18} nodes {:?}",
            net.model.name,
            net.members.iter().map(|n| n.0).collect::<Vec<_>>()
        );
    }

    let results = run_world(
        topology,
        Placement::OneRankPerNode,
        WorldConfig::default(),
        |comm| {
            let me = comm.rank();
            let n = comm.size();

            // 1) Ring: pass a token around the whole meta-cluster. Each
            // hop crosses whatever network connects the two nodes —
            // SCI inside the first cluster, TCP between clusters,
            // BIP inside the second.
            let right = (me + 1) % n;
            let left = (me + n - 1) % n;
            let token = [me as i64 + 1];
            let (incoming, _) =
                comm.sendrecv(&mpich::to_bytes(&token), right, 7, 64, Some(left), Some(7));
            let from_left: Vec<i64> = mpich::from_bytes(&incoming);

            // 2) A collective across the heterogeneous machine.
            let total = comm.allreduce_vec(&[me as i64 + 1], ReduceOp::Sum)[0];

            // 3) Virtual time tells us what all of this cost.
            let elapsed = marcel::now();
            (me, from_left[0], total, elapsed.as_micros_f64())
        },
    )
    .expect("world runs to completion");

    println!("\nrank  token-from-left  allreduce-total  virtual-time(us)");
    for (me, tok, total, us) in &results {
        println!("{me:>4}  {tok:>15}  {total:>15}  {us:>15.1}");
    }
    let n = results.len() as i64;
    assert!(results
        .iter()
        .all(|(_, _, total, _)| *total == n * (n + 1) / 2));
    println!("\nall ranks agree: sum(1..={n}) = {}", n * (n + 1) / 2);
}
