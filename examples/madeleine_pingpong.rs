//! Using the Madeleine library directly — the paper's Figure 2 example
//! (a size header sent `receive_EXPRESS`, the bulk payload
//! `receive_CHEAPER`), followed by a latency/bandwidth sweep over the
//! three simulated networks reproducing Table 1.
//!
//! ```sh
//! cargo run --example madeleine_pingpong
//! ```

use bytes::Bytes;
use madeleine::{ReceiveMode, SendMode, Session};
use marcel::{CostModel, Kernel};
use simnet::Protocol;

/// The Figure 2 pattern: the receiver learns the size from an EXPRESS
/// header before allocating for the CHEAPER body.
fn figure2_demo() {
    let kernel = Kernel::new(CostModel::calibrated());
    let session = Session::single_network(&kernel, 2, Protocol::Sisci);
    let channel = session.channels()[0].clone();
    let (tx, rx) = (
        channel.endpoint(0).expect("member rank"),
        channel.endpoint(1).expect("member rank"),
    );
    kernel.spawn("sender", move || {
        let array: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let mut conn = tx.begin_packing(1).expect("member rank");
        let size = (array.len() as u32).to_le_bytes();
        conn.pack(&size, SendMode::Cheaper, ReceiveMode::Express);
        conn.pack(&array, SendMode::Cheaper, ReceiveMode::Cheaper);
        conn.end_packing().expect("fault-free send");
    });
    let h = kernel.spawn("receiver", move || {
        let mut conn = rx.begin_unpacking().expect("channel open");
        let mut size = [0u8; 4];
        conn.unpack(&mut size, SendMode::Cheaper, ReceiveMode::Express);
        let n = u32::from_le_bytes(size) as usize;
        // Size known -> allocate, then extract the payload cheaply.
        let mut array = vec![0u8; n];
        conn.unpack(&mut array, SendMode::Cheaper, ReceiveMode::Cheaper);
        conn.end_unpacking();
        (n, array[12345], marcel::now())
    });
    kernel.run().expect("figure-2 demo runs");
    let (n, sample, at) = h.join_outcome().unwrap();
    println!("figure-2 demo: received {n} bytes (sample byte {sample}) at t+{at}");
}

/// A raw Madeleine ping-pong over one protocol: one pack per message.
fn sweep(protocol: Protocol) {
    let kernel = Kernel::new(CostModel::calibrated());
    let session = Session::single_network(&kernel, 2, protocol);
    let channel = session.channels()[0].clone();
    let (tx, rx) = (
        channel.endpoint(0).expect("member rank"),
        channel.endpoint(1).expect("member rank"),
    );
    let rx_closer = channel.endpoint(1).expect("member rank");
    let h = kernel.spawn("rank0", move || {
        let mut rows = Vec::new();
        for size in [4usize, 1024, 64 * 1024, 8 << 20] {
            let payload = Bytes::from(vec![0u8; size]);
            let iters = 3;
            let t0 = marcel::now();
            for _ in 0..iters {
                let mut conn = tx.begin_packing(1).expect("member rank");
                conn.pack_bytes(payload.clone(), SendMode::Cheaper, ReceiveMode::Cheaper);
                conn.end_packing().expect("fault-free send");
                let mut back = tx.begin_unpacking().unwrap();
                back.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper);
                back.end_unpacking();
            }
            let oneway = (marcel::now() - t0) / (2 * iters);
            let mb_s = size as f64 / (1 << 20) as f64 / oneway.as_secs_f64();
            rows.push((size, oneway.as_micros_f64(), mb_s));
        }
        // All exchanges done: shut rank1's echo loop down.
        rx_closer.close_incoming();
        rows
    });
    kernel.spawn("rank1", move || loop {
        // Echo everything back until rank0 closes the incoming side.
        let Some(mut conn) = rx.begin_unpacking() else {
            break;
        };
        let data = conn.unpack_bytes(SendMode::Cheaper, ReceiveMode::Cheaper);
        conn.end_unpacking();
        let mut reply = rx.begin_packing(0).expect("member rank");
        reply.pack_bytes(data, SendMode::Cheaper, ReceiveMode::Cheaper);
        reply.end_packing().expect("fault-free send");
    });
    kernel.run().expect("sweep runs to completion");
    println!(
        "\n{} (raw Madeleine, one pack per message):",
        protocol.name()
    );
    println!("{:>10} {:>12} {:>10}", "bytes", "oneway(us)", "MB/s");
    for (size, us, mb) in h.join_outcome().unwrap() {
        println!("{size:>10} {us:>12.2} {mb:>10.2}");
    }
}

fn main() {
    figure2_demo();
    for protocol in Protocol::ALL {
        sweep(protocol);
    }
}
