//! Automatic switch-point determination — the paper's §4.2.2 closes
//! with: "Those values could be determined automatically in future
//! works." This example implements that future work: for each network
//! it sweeps the eager→rendezvous threshold, measures ping-pong times
//! on both sides of each candidate, and reports the crossover where the
//! rendezvous mode starts winning — then compares the result against
//! the paper's hand-measured values (TCP 64 KB, SCI 8 KB, Myrinet 7 KB).
//!
//! It then demonstrates the per-network `ProtocolPolicy` API that makes
//! the tuned values usable: instead of electing one switch point for the
//! whole device (the paper's §4.2.2 compromise), each channel resolves
//! its own network's ideal threshold.
//!
//! ```sh
//! cargo run --release --example switch_point_tuning
//! ```

use mpich::{ChMadConfig, PolicyMode, ProtocolPolicy, RemoteDeviceKind, WorldConfig};
use simnet::{Protocol, Topology};

/// One-way ping-pong time for `size` bytes with the given forced mode.
fn oneway(protocol: Protocol, size: usize, force_rndv: bool) -> marcel::VirtualDuration {
    let cfg = ChMadConfig {
        // Forcing eager: threshold above the probe size. Forcing
        // rendezvous: threshold below it.
        switch_point_override: Some(if force_rndv {
            size.saturating_sub(1)
        } else {
            size + 1
        }),
        ..ChMadConfig::default()
    };
    let world = WorldConfig {
        remote: RemoteDeviceKind::ChMad(cfg),
        ..WorldConfig::default()
    };
    bench::mpi_pingpong(Topology::single_network(2, protocol), world, &[size], 3)[0].1
}

/// Find the smallest probed size where rendezvous beats eager.
fn tune(protocol: Protocol) -> usize {
    // Probe a geometric grid; refine around the crossing by bisection.
    let mut lo = 64usize; // eager certainly wins here
    let mut hi = 1 << 20; // rendezvous certainly wins here
    assert!(oneway(protocol, lo, true) > oneway(protocol, lo, false));
    assert!(oneway(protocol, hi, true) < oneway(protocol, hi, false));
    while hi - lo > 64 {
        let mid = lo + (hi - lo) / 2;
        if oneway(protocol, mid, true) < oneway(protocol, mid, false) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

fn main() {
    println!("automatic eager->rendezvous switch-point determination\n");
    println!(
        "{:<18} {:>12} {:>14} {:>8}",
        "network", "tuned", "paper (manual)", "ratio"
    );
    for (protocol, paper) in [
        (Protocol::Tcp, 64 * 1024usize),
        (Protocol::Sisci, 8 * 1024),
        (Protocol::Bip, 7 * 1024),
    ] {
        let tuned = tune(protocol);
        println!(
            "{:<18} {:>10} B {:>12} B {:>8.2}",
            protocol.model().name,
            tuned,
            paper,
            tuned as f64 / paper as f64
        );
    }
    println!(
        "\nThe crossover sits where the rendezvous handshake cost equals\n\
         the eager receive copy it eliminates. In this model that point\n\
         lands 2-5x below the paper's hand-picked round numbers — i.e.\n\
         the manual values were conservative, switching later than the\n\
         break-even point (a safe choice: past the crossover the two\n\
         modes differ only mildly until the copy term dominates)."
    );

    demo_policy_modes();
}

/// Show how the per-network policy exposes the per-protocol ideals that
/// the single elected threshold flattens away.
fn demo_policy_modes() {
    let protocols = [Protocol::Tcp, Protocol::Sisci, Protocol::Bip];
    let elected = ProtocolPolicy::new(PolicyMode::Elected, &protocols, None);
    let per_network = ProtocolPolicy::new(PolicyMode::PerNetwork, &protocols, None);
    println!("\nper-channel protocol policy (threshold each channel resolves)\n");
    println!("{:<18} {:>12} {:>14}", "network", "elected", "per-network");
    for p in protocols {
        println!(
            "{:<18} {:>10} B {:>12} B",
            p.model().name,
            elected.threshold(Some(p)),
            per_network.threshold(Some(p)),
        );
    }
    println!(
        "\nElected mode reproduces the paper: every channel shares SCI's\n\
         8 KB threshold, so a 7.5 KB message over Myrinet still goes\n\
         eager past its 7 KB ideal. Per-network mode (the new default)\n\
         lets each channel switch at its own crossover; on a dual-rail\n\
         pair, PolicyMode::Striped additionally splits rendezvous DATA\n\
         across the rails in proportion to link bandwidth:"
    );

    let dual_rail = |mode: PolicyMode| {
        let mut t = Topology::new();
        let a = t.add_node("a", 2);
        let b = t.add_node("b", 2);
        t.add_network(Protocol::Sisci, [a, b]);
        t.add_network(Protocol::Bip, [a, b]);
        let world = WorldConfig {
            remote: RemoteDeviceKind::ChMad(ChMadConfig {
                policy: mode,
                ..ChMadConfig::default()
            }),
            ..WorldConfig::default()
        };
        bench::mpi_pingpong(t, world, &[8 << 20], 2)[0].1
    };
    println!("\n{:<18} {:>16}", "policy (SCI+BIP)", "8 MB one-way");
    for mode in [
        PolicyMode::Elected,
        PolicyMode::PerNetwork,
        PolicyMode::Striped,
    ] {
        println!(
            "{:<18} {:>16}",
            format!("{mode:?}"),
            dual_rail(mode).to_string()
        );
    }
}
