//! # mpich-madeleine — facade crate
//!
//! Re-exports the full MPICH/Madeleine reproduction (see the
//! [README](https://example.org/mpich-madeleine-rs) and `DESIGN.md`):
//!
//! * [`marcel`] — the deterministic virtual-time thread kernel;
//! * [`simnet`] — calibrated network models and cluster topologies;
//! * [`madeleine`] — the Madeleine II communication library;
//! * [`mpich`] — the MPI stack with the multi-protocol `ch_mad` device;
//! * [`baselines`] — models of the paper's comparator MPIs.
//!
//! The [`prelude`] pulls in everything a typical application needs:
//!
//! ```
//! use mpich_madeleine::prelude::*;
//!
//! let results = run_world(
//!     Topology::meta_cluster(2),
//!     Placement::OneRankPerNode,
//!     WorldConfig::default(),
//!     |comm| comm.allreduce_vec(&[comm.rank() as i64], ReduceOp::Sum)[0],
//! )
//! .unwrap();
//! assert!(results.iter().all(|&s| s == 6));
//! ```

pub use baselines;
pub use madeleine;
pub use marcel;
pub use mpich;
pub use simnet;

/// Everything a typical simulated MPI application needs.
pub mod prelude {
    pub use marcel::{CostModel, Kernel, VirtualDuration, VirtualTime};
    pub use mpich::{
        run_world, run_world_kernel, BaseType, CartComm, ChMadConfig, Communicator, Datatype,
        Placement, ReduceOp, RemoteDeviceKind, Request, Status, WorldConfig,
    };
    pub use simnet::{NodeId, Protocol, Topology};
}
