//! Minimal, API-compatible stand-in for the `proptest` crate, vendored
//! so the workspace builds without network access.
//!
//! Provided surface (exactly what this repository's property tests
//! use): the [`Strategy`] trait with `prop_map`/`prop_recursive`,
//! range and tuple strategies, `Just`, `any`, `prop_oneof!`,
//! `collection::vec`, the `proptest!` test-harness macro with
//! `ProptestConfig::with_cases`, and `prop_assert!`-family macros.
//!
//! Differences from the real crate: no shrinking (a failing case
//! reports its inputs via the panic message only) and a fixed
//! deterministic per-test seed derived from the test name, so runs are
//! reproducible.

use std::rc::Rc;

/// Deterministic per-test random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seed derived from a test's fully qualified name.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy: 'static {
    type Value: 'static;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase into a cloneable, reference-counted strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| s.sample(rng)))
    }

    /// Map generated values through `f`.
    fn prop_map<U: 'static, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| f(s.sample(rng))))
    }

    /// Recursive strategies: `f` receives a strategy for the inner
    /// value and wraps it one level deeper. `depth` bounds nesting;
    /// `_desired_size`/`_branch` are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let deeper = f(cur).boxed();
            let leaf = base.clone();
            // Each level flips between stopping (leaf) and recursing,
            // so sampled structures vary in depth up to `depth`.
            cur = BoxedStrategy(Rc::new(move |rng| {
                if rng.next_u64() & 1 == 0 {
                    leaf.sample(rng)
                } else {
                    deeper.sample(rng)
                }
            }));
        }
        cur
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy producing one constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-domain strategies for primitives (`any::<T>()`).
pub trait Arbitrary: Sized + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix finite values with specials, like the real crate's
        // `any::<f64>()` which explores edge cases.
        match rng.next_u64() % 8 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> impl Strategy<Value = T> {
    AnyStrategy::<T>(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// A uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
        let idx = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

pub mod collection {
    use super::{BoxedStrategy, Strategy};
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: an exact count or a half-open range.
    pub trait IntoSizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> BoxedStrategy<Vec<S::Value>> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec size range");
        let element = element.boxed();
        BoxedStrategy(std::rc::Rc::new(move |rng| {
            let span = (hi - lo) as u64;
            let len = lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| element.sample(rng)).collect()
        }))
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// The test-harness macro: each `fn` becomes a `#[test]` that samples
/// its strategies `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let described = format!(
                        concat!("case ", "{}", $(" ", stringify!($arg), "={:?}",)*),
                        case $(, &$arg)*
                    );
                    let ran = {
                        // `prop_assume!` rejects a case by returning
                        // `false` from this closure.
                        #[allow(unused_mut)]
                        let mut body = move || -> bool { $body; true };
                        let outcome = ::std::panic::catch_unwind(
                            ::std::panic::AssertUnwindSafe(&mut body),
                        );
                        match outcome {
                            Ok(ran) => ran,
                            Err(payload) => {
                                eprintln!("proptest failure in {}: {}",
                                          stringify!($name), described);
                                ::std::panic::resume_unwind(payload);
                            }
                        }
                    };
                    let _ = ran;
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Uniform choice among the listed strategies (all must share a value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Reject the current case (counts as neither pass nor fail).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::from_seed(3);
        let s = (0usize..10, -5i64..5);
        for _ in 0..100 {
            let (a, b) = s.sample(&mut rng);
            assert!(a < 10);
            assert!((-5..5).contains(&b));
        }
    }

    #[test]
    fn vec_respects_size() {
        let mut rng = TestRng::from_seed(4);
        let s = collection::vec(0u8..8, 2..5);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
            assert!(v.iter().all(|&x| x < 8));
        }
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(inner) => 1 + depth(inner),
            }
        }
        let s = Just(Tree::Leaf)
            .prop_recursive(4, 8, 1, |inner| inner.prop_map(|t| Tree::Node(Box::new(t))));
        let mut rng = TestRng::from_seed(5);
        for _ in 0..100 {
            assert!(depth(&s.sample(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn harness_macro_runs(x in 0usize..100, flag in any::<bool>()) {
            prop_assume!(x != 99);
            prop_assert!(x < 99);
            let _ = flag;
        }
    }
}
