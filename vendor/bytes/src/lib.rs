//! Minimal, API-compatible stand-in for the `bytes` crate, vendored so
//! the workspace builds without network access. Only the surface the
//! repository uses is provided: cheaply cloneable immutable [`Bytes`]
//! with zero-copy slicing, a growable [`BytesMut`] builder, and the
//! [`BufMut`] put-style append trait.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Backed by an `Arc<[u8]>` plus a sub-range, so `clone` and
/// [`Bytes::slice`] are O(1) and share the underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice. (The real crate is zero-copy here; this
    /// stand-in copies once, which is equivalent observable behavior.)
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Copy `data` into a fresh allocation.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        let arc: Arc<[u8]> = Arc::from(data);
        Bytes {
            start: 0,
            end: arc.len(),
            data: arc,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range reversed: {begin}..{end}");
        assert!(end <= len, "slice out of bounds: {end} > {len}");
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let arc: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        Bytes {
            start: 0,
            end: arc.len(),
            data: arc,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer, convertible into [`Bytes`] with
/// [`BytesMut::freeze`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Grow or shrink to `new_len`, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Append-style writer trait (the subset of the real `BufMut` the
/// repository uses: little-endian puts and slice appends).
pub trait BufMut {
    fn put_slice(&mut self, data: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..2), Bytes::from(vec![2, 3]));
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn builder_round_trip() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(7);
        m.put_u32_le(0x01020304);
        m.resize(8, 0xFF);
        let b = m.freeze();
        assert_eq!(&b[..], &[7, 4, 3, 2, 1, 0xFF, 0xFF, 0xFF]);
    }
}
