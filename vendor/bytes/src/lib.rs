//! Minimal, API-compatible stand-in for the `bytes` crate, vendored so
//! the workspace builds without network access. Only the surface the
//! repository uses is provided: cheaply cloneable immutable [`Bytes`]
//! with zero-copy slicing, a growable [`BytesMut`] builder, and the
//! [`BufMut`] put-style append trait.
//!
//! Storage is one of three representations: a borrowed `'static`
//! slice (zero-copy, zero-alloc), a shared `Arc<Vec<u8>>` (adopting a
//! `Vec` never reallocates, even when capacity exceeds length), or a
//! pooled fixed-size buffer for small payloads such as packet headers.
//! Pooled buffers return to a global freelist when the last `Bytes`
//! referencing them drops, so a steady-state hot path that copies
//! header-sized slices performs no allocator calls at all.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Size of one pooled buffer. Covers packet headers (≤ 53 B) and
/// eager small-message payloads with room to spare.
pub const POOL_SLOT: usize = 64;

/// Maximum number of idle buffers kept on the freelist.
const POOL_CAP: usize = 1024;

struct PoolBuf {
    len: usize,
    data: [u8; POOL_SLOT],
}

static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);

fn pool() -> &'static Mutex<Vec<Arc<PoolBuf>>> {
    static POOL: OnceLock<Mutex<Vec<Arc<PoolBuf>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

/// (hits, misses) of the small-buffer pool since process start. A hit
/// is a [`Bytes::copy_from_slice`]/[`Bytes::pooled_copy`] served from
/// a recycled buffer; a miss allocated a fresh one.
pub fn pool_stats() -> (u64, u64) {
    (
        POOL_HITS.load(Ordering::Relaxed),
        POOL_MISSES.load(Ordering::Relaxed),
    )
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
    Pooled(Arc<PoolBuf>),
}

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Backed by shared storage plus a sub-range, so `clone` and
/// [`Bytes::slice`] are O(1) and share the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice, zero-copy.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            start: 0,
            end: data.len(),
            repr: Repr::Static(data),
        }
    }

    /// Copy `data` into fresh storage. Header-sized slices
    /// (≤ [`POOL_SLOT`] bytes) draw from the recycling pool and cost
    /// no allocator call once the pool is warm.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        if data.len() <= POOL_SLOT {
            return Bytes::pooled_copy(data);
        }
        Bytes::from(data.to_vec())
    }

    /// Copy `data` (≤ [`POOL_SLOT`] bytes, or this falls back to a
    /// plain copy) into a pooled buffer.
    pub fn pooled_copy(data: &[u8]) -> Bytes {
        if data.len() > POOL_SLOT {
            return Bytes::from(data.to_vec());
        }
        let recycled = pool().lock().expect("bytes pool poisoned").pop();
        let mut arc = match recycled {
            Some(arc) => {
                POOL_HITS.fetch_add(1, Ordering::Relaxed);
                arc
            }
            None => {
                POOL_MISSES.fetch_add(1, Ordering::Relaxed);
                Arc::new(PoolBuf {
                    len: 0,
                    data: [0; POOL_SLOT],
                })
            }
        };
        let buf = Arc::get_mut(&mut arc).expect("freelist buffer is uniquely owned");
        buf.data[..data.len()].copy_from_slice(data);
        buf.len = data.len();
        Bytes {
            start: 0,
            end: data.len(),
            repr: Repr::Pooled(arc),
        }
    }

    fn base(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(v) => v,
            Repr::Pooled(p) => &p.data[..p.len],
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range reversed: {begin}..{end}");
        assert!(end <= len, "slice out of bounds: {end} > {len}");
        Bytes {
            repr: self.repr.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Convert into a `Vec<u8>`, recovering the original allocation
    /// without copying when this handle is the sole, full-range owner
    /// of a shared buffer (the inverse of `Bytes::from(vec)`); copies
    /// otherwise.
    pub fn into_vec(mut self) -> Vec<u8> {
        let whole_shared =
            self.start == 0 && matches!(&self.repr, Repr::Shared(v) if self.end == v.len());
        if whole_shared {
            if let Repr::Shared(arc) = std::mem::replace(&mut self.repr, Repr::Static(&[])) {
                self.end = 0;
                return match Arc::try_unwrap(arc) {
                    Ok(v) => v,
                    Err(arc) => arc[..].to_vec(),
                };
            }
        }
        self.to_vec()
    }
}

impl Drop for Bytes {
    fn drop(&mut self) {
        // Recycle pooled buffers: when this handle is the last owner,
        // park the (still-allocated) buffer on the freelist instead of
        // freeing it. `strong_count == 1` means no other handle can
        // race us, so pushing a clone (count 2, dropping to 1 as this
        // handle dies) hands the freelist sole ownership.
        if let Repr::Pooled(arc) = &self.repr {
            if Arc::strong_count(arc) == 1 {
                let mut freelist = pool().lock().expect("bytes pool poisoned");
                if freelist.len() < POOL_CAP {
                    freelist.push(arc.clone());
                }
            }
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.base()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    /// Adopt a `Vec` without reallocating (spare capacity is kept).
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            start: 0,
            end: v.len(),
            repr: Repr::Shared(Arc::new(v)),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer, convertible into [`Bytes`] with
/// [`BytesMut::freeze`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Grow or shrink to `new_len`, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Append-style writer trait (the subset of the real `BufMut` the
/// repository uses: little-endian puts and slice appends).
pub trait BufMut {
    fn put_slice(&mut self, data: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..2), Bytes::from(vec![2, 3]));
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn builder_round_trip() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(7);
        m.put_u32_le(0x01020304);
        m.resize(8, 0xFF);
        let b = m.freeze();
        assert_eq!(&b[..], &[7, 4, 3, 2, 1, 0xFF, 0xFF, 0xFF]);
    }

    #[test]
    fn static_is_zero_copy() {
        static DATA: [u8; 4] = [9, 8, 7, 6];
        let b = Bytes::from_static(&DATA);
        assert_eq!(b.as_ref().as_ptr(), DATA.as_ptr());
        assert_eq!(b.slice(1..3), Bytes::from(vec![8, 7]));
    }

    #[test]
    fn adopting_vec_keeps_buffer() {
        let mut v = Vec::with_capacity(128);
        v.extend_from_slice(&[1, 2, 3]);
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ref().as_ptr(), ptr);
    }

    #[test]
    fn pool_recycles_small_buffers() {
        // Drain any state other tests left, then verify a
        // copy → drop → copy cycle reuses the same buffer.
        let b = Bytes::pooled_copy(&[1, 2, 3]);
        let ptr = b.as_ref().as_ptr();
        drop(b);
        let (h0, _) = pool_stats();
        let c = Bytes::pooled_copy(&[4, 5, 6, 7]);
        let (h1, _) = pool_stats();
        assert!(h1 > h0, "second pooled copy should hit the freelist");
        assert_eq!(c.as_ref().as_ptr(), ptr, "buffer was recycled in place");
        assert_eq!(&c[..], &[4, 5, 6, 7]);

        // A clone keeps the buffer alive: dropping one handle must NOT
        // recycle it while the other still reads it.
        let keep = c.clone();
        drop(c);
        assert_eq!(&keep[..], &[4, 5, 6, 7]);
    }

    #[test]
    fn into_vec_recovers_unique_buffer() {
        let mut v = vec![1u8, 2, 3];
        v.reserve(64);
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        let back = b.into_vec();
        assert_eq!(back.as_ptr(), ptr, "sole owner recovers without copy");

        // A second handle forces a copy; both stay readable.
        let b = Bytes::from(vec![4u8, 5]);
        let keep = b.clone();
        assert_eq!(b.into_vec(), vec![4, 5]);
        assert_eq!(&keep[..], &[4, 5]);

        // A sub-slice can never adopt the whole buffer.
        let b = Bytes::from(vec![6u8, 7, 8]).slice(1..);
        assert_eq!(b.into_vec(), vec![7, 8]);
    }

    #[test]
    fn oversized_pooled_copy_falls_back() {
        let big = vec![0xAB; POOL_SLOT + 1];
        let b = Bytes::pooled_copy(&big);
        assert_eq!(b.len(), POOL_SLOT + 1);
        assert_eq!(&b[..], &big[..]);
    }
}
