//! Minimal, API-compatible stand-in for the `rand` crate, vendored so
//! the workspace builds without network access. Deterministic by
//! construction: `StdRng` is a SplitMix64 generator, which is all the
//! seeded test workloads in this repository need.

use std::ops::Range;

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the full value domain
/// (`rng.gen()`).
pub trait Uniform: Sized {
    fn draw(rng: &mut dyn RngCore) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn draw(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Uniform for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Uniform for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // Uniform in [0, 1), like rand's Standard distribution.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges a value can be drawn from (`rng.gen_range(range)`). Generic
/// over the output type so integer literals in the range infer from
/// the call site's expected type, as with the real crate.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The user-facing generator trait: blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Uniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64). Not the real crate's
    /// ChaCha-based StdRng, but every use in this repository only
    /// requires a seeded, reproducible stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_produces_all_u8_eventually() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 256];
        for _ in 0..100_000 {
            seen[rng.gen::<u8>() as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
