//! Minimal, API-compatible stand-in for `parking_lot`, vendored so the
//! workspace builds without network access. Wraps `std::sync`
//! primitives with parking_lot's non-poisoning API shape: `lock()`
//! returns a guard directly, and `Condvar::wait` takes `&mut
//! MutexGuard` instead of consuming it.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            mutex: &self.inner,
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                mutex: &self.inner,
                inner: Some(g),
            }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                mutex: &self.inner,
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard returned by [`Mutex::lock`]. The inner `Option` is only ever
/// `None` transiently inside [`Condvar::wait`].
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a sync::Mutex<T>,
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A condition variable for use with [`Mutex`]. Unlike `std`, `wait`
/// borrows the guard mutably rather than consuming it.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        // std's wait returns a guard for the same mutex, so putting it
        // back preserves the MutexGuard invariant.
        let _ = guard.mutex;
        guard.inner = Some(std_guard);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock whose guards never return `Result`.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

/// Shared guard from [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard from [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar() {
        let m = Arc::new(Mutex::new(0));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while *g == 0 {
                cv2.wait(&mut g);
            }
            *g
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *m.lock() = 42;
        cv.notify_all();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn rwlock() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
