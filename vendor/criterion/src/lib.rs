//! Minimal, API-compatible stand-in for the `criterion` benchmark
//! harness, vendored so the workspace builds without network access.
//!
//! No statistical machinery: each benchmark runs a small fixed number
//! of timed iterations and prints the mean wall-clock time. Enough to
//! execute `cargo bench` targets and eyeball relative costs; not a
//! substitute for real criterion when precision matters.

use std::time::Instant;

const WARMUP_ITERS: u64 = 2;
const DEFAULT_SAMPLES: u64 = 10;

/// Drives one benchmark body (`b.iter(...)`).
pub struct Bencher {
    samples: u64,
    /// Mean nanoseconds per iteration, recorded by `iter`.
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(body());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(body());
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / self.samples as f64;
    }
}

/// Prevent the optimizer from deleting a benchmark body's result.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level harness handle, one per `criterion_group!` function.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut body: F,
    ) -> &mut Criterion {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        body(&mut b);
        report(name, b.mean_ns);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks (`c.benchmark_group(...)`).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut body: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        body(&mut b);
        report(&format!("{}/{}", self.name, name), b.mean_ns);
        self
    }

    pub fn finish(self) {}
}

fn report(name: &str, mean_ns: f64) {
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "µs")
    } else {
        (mean_ns, "ns")
    };
    println!("bench {name:<48} {value:>10.3} {unit}/iter");
}

/// Collect benchmark functions into one group-runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.sample_size(3).bench_function("smoke", |b| {
            b.iter(|| runs += 1);
        });
        assert!(runs >= 3);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        let mut runs = 0u64;
        g.sample_size(2)
            .bench_function("inner", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs >= 2);
    }
}
